"""Objective scoring: costs, normalised violations, both constraint modes."""

import math

import pytest

from repro.optimize.objective import INFEASIBLE_OFFSET, Objective, worst_sense
from repro.pga.specs import Bound, Spec, SpecLimit

SPEC = Spec("demo", (
    SpecLimit("noise", Bound.MAX, 6.0, "nV"),
    SpecLimit("psrr", Bound.MIN, 75.0, "dB"),
    SpecLimit("gain_err", Bound.ABS_MAX, 0.05, "dB"),
    SpecLimit("area", Bound.RANGE, (0.5, 2.0), "mm^2"),
    SpecLimit("fyi", Bound.INFO, 0.0, "x"),
))


def objective(mode="feasibility"):
    return Objective(spec=SPEC, minimize=(("iq", 1.0),), mode=mode)


PASSING = {"iq": 2.0, "noise": 5.0, "psrr": 80.0, "gain_err": -0.04, "area": 1.0}


class TestViolations:
    def test_passing_point_has_no_violations(self):
        assert objective().violations(PASSING) == {
            "noise": 0.0, "psrr": 0.0, "gain_err": 0.0, "area": 0.0}
        assert objective().feasible(PASSING)

    def test_each_bound_direction(self):
        obj = objective()
        v = obj.violations({**PASSING, "noise": 6.6})
        assert v["noise"] == pytest.approx(0.1)
        v = obj.violations({**PASSING, "psrr": 67.5})
        assert v["psrr"] == pytest.approx(0.1)
        v = obj.violations({**PASSING, "gain_err": -0.06})
        assert v["gain_err"] == pytest.approx(0.2)
        v = obj.violations({**PASSING, "area": 2.2})
        assert v["area"] == pytest.approx(0.1)
        v = obj.violations({**PASSING, "area": 0.3})
        assert v["area"] == pytest.approx(0.1)

    def test_info_rows_never_constrain(self):
        assert objective().feasible({**PASSING, "fyi": 1e9})

    def test_missing_metrics_skipped(self):
        v = objective().violations({"iq": 1.0, "noise": 5.0})
        assert set(v) == {"noise"}

    def test_nan_measurement_is_violated(self):
        v = objective().violations({**PASSING, "noise": float("nan")})
        assert v["noise"] == 1.0


class TestScoring:
    def test_feasibility_mode_feasible_scores_cost(self):
        assert objective().score(PASSING) == pytest.approx(2.0)

    def test_feasibility_mode_infeasible_always_worse(self):
        obj = objective()
        bad = {**PASSING, "noise": 6.1, "iq": 0.01}
        assert obj.score(bad) > INFEASIBLE_OFFSET
        assert obj.score(bad) > obj.score({**PASSING, "iq": 100.0})

    def test_feasibility_mode_ranks_infeasible_by_violation(self):
        obj = objective()
        assert obj.score({**PASSING, "noise": 6.1}) < \
            obj.score({**PASSING, "noise": 7.0})

    def test_penalty_mode_trades_cost_and_violation(self):
        obj = objective(mode="penalty")
        # violation 0.1 * weight 100 = 10 added to cost 2
        assert obj.score({**PASSING, "noise": 6.6}) == pytest.approx(12.0)

    def test_empty_metrics_scores_infinite_cost_tier(self):
        assert objective().score({}) > 2 * INFEASIBLE_OFFSET - 1

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            Objective(spec=SPEC, mode="magic")

    def test_cost_with_nonfinite_metric(self):
        assert objective().cost({"iq": math.inf}) == math.inf


class TestWorstSense:
    def test_bound_directions(self):
        assert worst_sense(Bound.MIN) == "min"
        assert worst_sense(Bound.MAX) == "max"
        assert worst_sense(Bound.ABS_MAX) == "absmax"
        assert worst_sense(Bound.RANGE) == "max"

    def test_objective_lookup_defaults_to_max(self):
        obj = objective()
        assert obj.worst_sense("psrr") == "min"
        assert obj.worst_sense("gain_err") == "absmax"
        assert obj.worst_sense("iq") == "max"  # unconstrained cost


class TestWorstCase:
    def test_directional_bounds(self):
        obj = objective()
        assert obj.worst_case("psrr", [80.0, 76.0, 90.0]) == 76.0
        assert obj.worst_case("noise", [5.0, 5.9, 5.5]) == 5.9
        assert obj.worst_case("gain_err", [0.03, -0.045, 0.01]) == -0.045
        assert obj.worst_case("iq", [1.0, 2.0]) == 2.0  # unconstrained cost

    def test_range_bound_is_two_sided(self):
        """A population straddling a RANGE limit must report whichever
        extreme violates more — max() alone would mask a floor breach."""
        obj = objective()
        # area RANGE (0.5, 2.0): one unit below the floor, one inside
        assert obj.worst_case("area", [0.3, 1.5]) == 0.3
        # one above the ceiling, one inside
        assert obj.worst_case("area", [1.5, 2.2]) == 2.2
        # floor breach worse than ceiling breach
        assert obj.worst_case("area", [0.1, 2.1]) == 0.1
        # both compliant: conservative ceiling
        assert obj.worst_case("area", [0.8, 1.5]) == 1.5
