"""Pareto-front collection: domination pruning and export round-trip."""

import numpy as np
import pytest

from repro.optimize.pareto import ParetoFront


def front2():
    return ParetoFront(("a", "b"))


class TestDomination:
    def test_non_dominated_points_coexist(self):
        f = front2()
        assert f.add({"a": 1.0, "b": 3.0}, {"p": 1.0})
        assert f.add({"a": 3.0, "b": 1.0}, {"p": 2.0})
        assert len(f) == 2

    def test_dominated_candidate_rejected(self):
        f = front2()
        f.add({"a": 1.0, "b": 1.0}, {})
        assert not f.add({"a": 2.0, "b": 2.0}, {})
        assert not f.add({"a": 1.0, "b": 2.0}, {})  # weak domination
        assert len(f) == 1

    def test_duplicate_rejected(self):
        f = front2()
        f.add({"a": 1.0, "b": 1.0}, {})
        assert not f.add({"a": 1.0, "b": 1.0}, {})
        assert len(f) == 1

    def test_new_point_prunes_everything_it_dominates(self):
        f = front2()
        f.add({"a": 2.0, "b": 3.0}, {})
        f.add({"a": 3.0, "b": 2.0}, {})
        f.add({"a": 5.0, "b": 0.5}, {})
        assert f.add({"a": 1.0, "b": 1.0}, {})
        assert len(f) == 2  # only the (5, 0.5) corner survives alongside
        values = {p.values for p in f.points}
        assert (1.0, 1.0) in values and (5.0, 0.5) in values

    def test_missing_or_nonfinite_objective_rejected(self):
        f = front2()
        assert not f.add({"a": 1.0}, {})
        assert not f.add({"a": 1.0, "b": float("nan")}, {})
        assert f.n_offered == 2 and len(f) == 0

    def test_random_front_is_mutually_nondominated(self):
        rng = np.random.default_rng(5)
        f = front2()
        for a, b in rng.random((200, 2)):
            f.add({"a": float(a), "b": float(b)}, {})
        pts = np.array([p.values for p in f.points])
        for i in range(len(pts)):
            others = np.delete(pts, i, axis=0)
            dominated = np.all(others <= pts[i], axis=1) & \
                np.any(others < pts[i], axis=1)
            assert not np.any(dominated)


class TestAccessorsAndExport:
    def test_best_by(self):
        f = front2()
        f.add({"a": 1.0, "b": 3.0}, {"p": 1.0})
        f.add({"a": 3.0, "b": 1.0}, {"p": 2.0})
        assert f.best_by("a").params == {"p": 1.0}
        assert f.best_by("b").params == {"p": 2.0}
        with pytest.raises(KeyError):
            f.best_by("zzz")

    def test_best_by_empty_front_raises(self):
        with pytest.raises(ValueError, match="empty"):
            front2().best_by("a")

    def test_csv_export(self, tmp_path):
        f = front2()
        f.add({"a": 1.0, "b": 3.0}, {"p": 1.0, "q": 2.0})
        path = tmp_path / "front.csv"
        f.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b,feasible,p,q"
        assert lines[1].startswith("1.0,3.0,1,")

    def test_json_round_trip(self, tmp_path):
        f = front2()
        f.add({"a": 1.0, "b": 3.0, "extra": 9.0}, {"p": 1.0}, feasible=False)
        f.add({"a": 3.0, "b": 1.0}, {"p": 2.0})
        path = tmp_path / "front.json"
        f.to_json(path)
        back = ParetoFront.from_json(path)
        assert back.objectives == f.objectives
        assert back.n_offered == f.n_offered
        assert [p.values for p in back.sorted_points()] == \
            [p.values for p in f.sorted_points()]
        assert back.sorted_points()[0].feasible is False

    def test_format_mentions_counts(self):
        f = front2()
        f.add({"a": 1.0, "b": 3.0}, {})
        text = f.format()
        assert "1 points" in text and "1 offered" in text
