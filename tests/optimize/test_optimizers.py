"""Population search: seeding, convergence, determinism, budget."""

import math

import numpy as np
import pytest

from repro.optimize.evaluate import Evaluation
from repro.optimize.optimizers import latin_hypercube, optimize
from repro.optimize.space import DesignSpace, Parameter


class AnalyticEvaluator:
    """Evaluator stub: a quadratic bowl with the evaluator's cache
    interface, so the optimizer stages can be tested in milliseconds."""

    def __init__(self, space, target):
        self.space = space
        self.target = np.asarray(target, dtype=float)
        self.cache = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.calls = []

    def evaluate(self, x):
        q = self.space.quantize(np.asarray(x, dtype=float))
        key = self.space.key(q)
        if key in self.cache:
            self.cache_hits += 1
            return self.cache[key]
        self.cache_misses += 1
        self.calls.append(q)
        score = float(np.sum((q - self.target) ** 2))
        ev = Evaluation(x=q, metrics={"a": float(q[0]), "b": float(q[1])},
                        score=score, feasible=True)
        self.cache[key] = ev
        return ev


def bowl_space():
    return DesignSpace([
        Parameter("x", -2.0, 2.0, step=0.05),
        Parameter("y", -2.0, 2.0, step=0.05),
    ])


class TestLatinHypercube:
    def test_stratification(self):
        rng = np.random.default_rng(3)
        u = latin_hypercube(16, 4, rng)
        assert u.shape == (16, 4)
        for j in range(4):
            strata = np.floor(u[:, j] * 16).astype(int)
            assert sorted(strata) == list(range(16))

    def test_deterministic_per_seed(self):
        a = latin_hypercube(8, 3, np.random.default_rng(1))
        b = latin_hypercube(8, 3, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            latin_hypercube(0, 2, np.random.default_rng(0))


class TestOptimize:
    def test_finds_the_bowl_minimum_on_the_grid(self):
        space = bowl_space()
        target = (0.6310, -1.2170)  # off-grid; nearest cells 0.65, -1.20
        result = optimize(space, AnalyticEvaluator(space, target),
                          budget=200, seed=4)
        assert result.best.score < 1e-3
        np.testing.assert_allclose(result.best.x, [0.65, -1.2], atol=1e-9)

    def test_deterministic_per_seed(self):
        space = bowl_space()
        runs = [optimize(space, AnalyticEvaluator(space, (0.3, 0.3)),
                         budget=80, seed=9) for _ in range(2)]
        np.testing.assert_array_equal(runs[0].best.x, runs[1].best.x)
        assert runs[0].history == runs[1].history
        assert runs[0].n_evaluations == runs[1].n_evaluations

    def test_different_seeds_explore_differently(self):
        space = bowl_space()
        e1 = AnalyticEvaluator(space, (0.3, 0.3))
        e2 = AnalyticEvaluator(space, (0.3, 0.3))
        optimize(space, e1, budget=40, seed=1, refine=False)
        optimize(space, e2, budget=40, seed=2, refine=False)
        assert any(not np.array_equal(a, b)
                   for a, b in zip(e1.calls, e2.calls))

    def test_budget_is_respected_and_counts_hits(self):
        space = bowl_space()
        ev = AnalyticEvaluator(space, (0.0, 0.0))
        result = optimize(space, ev, budget=57, seed=2)
        assert result.n_evaluations == 57
        assert result.cache_hits + result.cache_misses == 57
        assert ev.cache_hits == result.cache_hits

    def test_warm_start_is_evaluated_first(self):
        space = bowl_space()
        ev = AnalyticEvaluator(space, (1.0, 1.0))
        optimize(space, ev, budget=30, seed=3,
                 seed_points=(np.array([1.0, 1.0]),))
        np.testing.assert_allclose(ev.calls[0], [1.0, 1.0], atol=1e-9)

    def test_history_scores_strictly_improve(self):
        space = bowl_space()
        result = optimize(space, AnalyticEvaluator(space, (0.5, -0.5)),
                          budget=120, seed=6)
        scores = [s for _, s in result.history]
        assert all(b < a for a, b in zip(scores, scores[1:]))

    def test_pareto_front_collected(self):
        space = bowl_space()
        result = optimize(space, AnalyticEvaluator(space, (0.0, 0.0)),
                          budget=40, seed=5, pareto_objectives=("a", "b"))
        assert len(result.pareto) >= 1
        assert result.pareto.n_offered == 40

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError, match="budget"):
            optimize(bowl_space(), AnalyticEvaluator(bowl_space(), (0, 0)),
                     budget=1)

    def test_rejects_degenerate_population(self):
        with pytest.raises(ValueError, match="pop_size"):
            optimize(bowl_space(), AnalyticEvaluator(bowl_space(), (0, 0)),
                     budget=20, pop_size=2)

    def test_optimum_pinned_at_the_box_corner(self):
        """Target outside the box: the refinement stage sits against the
        bounds, where past-bound probes clip back onto the incumbent and
        must be skipped rather than burn budget on self-evaluations."""
        space = bowl_space()
        ev = AnalyticEvaluator(space, (-3.0, -3.0))
        result = optimize(space, ev, budget=150, seed=4)
        np.testing.assert_allclose(result.best.x, [-2.0, -2.0], atol=1e-9)

    def test_minimum_viable_population_runs(self):
        space = bowl_space()
        result = optimize(space, AnalyticEvaluator(space, (0.0, 0.0)),
                          budget=30, seed=3, pop_size=4)
        assert result.n_evaluations == 30

    def test_summary_mentions_feasibility(self):
        space = bowl_space()
        result = optimize(space, AnalyticEvaluator(space, (0.0, 0.0)),
                          budget=30, seed=8)
        assert "feasible" in result.summary()
        assert math.isfinite(result.best.score)


class TestMicAmpIntegration:
    def test_quick_budget_recovers_a_table1_compliant_sizing(self):
        """The acceptance criterion: the optimizer's winner passes the
        shipped Table 1 spec rows it measures."""
        from repro.optimize import optimize_mic_amp
        from repro.pga.specs import MIC_AMP_SPEC

        result = optimize_mic_amp(budget=60, seed=2026)
        assert result.best.feasible
        report = MIC_AMP_SPEC.check(result.best.metrics)
        assert report.passed
        # and it should not cost more than the paper's own design point
        assert result.best.metrics["iq_ma"] <= 2.6
        assert result.best.metrics["area_mm2"] <= 2.0

    def test_fixed_seed_reproduces_the_search_bitwise(self):
        from repro.optimize import optimize_mic_amp

        r1 = optimize_mic_amp(budget=30, seed=5)
        r2 = optimize_mic_amp(budget=30, seed=5)
        np.testing.assert_array_equal(r1.best.x, r2.best.x)
        assert r1.best.metrics == r2.best.metrics
        assert r1.history == r2.history
