"""Process corners."""

import pytest

from repro.process import (
    CMOS12,
    CONSUMER_TEMPS_C,
    CORNERS,
    apply_corner,
    iter_pvt,
)


class TestCorners:
    def test_five_corners_defined(self):
        assert set(CORNERS) == {"tt", "ff", "ss", "fs", "sf"}

    def test_tt_is_identity(self):
        t = apply_corner(CMOS12, "tt")
        assert t.nmos.vth0 == CMOS12.nmos.vth0
        assert t.nmos.kp == CMOS12.nmos.kp

    def test_ff_faster_ss_slower(self):
        ff = apply_corner(CMOS12, "ff")
        ss = apply_corner(CMOS12, "ss")
        assert ff.nmos.vth0 < CMOS12.nmos.vth0 < ss.nmos.vth0
        assert ff.nmos.kp > CMOS12.nmos.kp > ss.nmos.kp

    def test_cross_corners_skew_flavours_oppositely(self):
        fs = apply_corner(CMOS12, "fs")
        assert fs.nmos.vth0 < CMOS12.nmos.vth0
        assert fs.pmos.vth0 > CMOS12.pmos.vth0

    def test_resistors_and_bjt_skewed(self):
        ss = apply_corner(CMOS12, "ss")
        assert ss.poly.sheet_ohm > CMOS12.poly.sheet_ohm
        assert ss.vpnp.is_sat < CMOS12.vpnp.is_sat

    def test_name_annotated(self):
        assert apply_corner(CMOS12, "ff").name.endswith("-ff")

    def test_unknown_corner_raises(self):
        with pytest.raises(KeyError, match="unknown corner"):
            apply_corner(CMOS12, "tturbo")

    def test_iter_pvt_default_grid(self):
        """Five corners x the consumer temperature range, corner-major."""
        points = list(iter_pvt(CMOS12))
        assert len(points) == len(CORNERS) * len(CONSUMER_TEMPS_C)
        assert [p.temp_c for p in points[:3]] == list(CONSUMER_TEMPS_C)
        assert len({p.corner.name for p in points}) == len(CORNERS)
        # skewed technology computed once per corner and shared
        assert points[0].tech is points[1].tech
        assert points[0].tech.nmos.vth0 == CMOS12.nmos.vth0  # tt first

    def test_iter_pvt_accepts_names_and_corners(self):
        points = list(iter_pvt(corners=("FF", CORNERS["ss"]), temps_c=(25.0,)))
        assert [p.corner.name for p in points] == ["ff", "ss"]
        assert points[0].tech is None  # no base technology given

    def test_iter_pvt_skews_technology(self):
        point = next(iter_pvt(CMOS12, corners=("ff",), temps_c=(25.0,)))
        assert point.tech.nmos.vth0 < CMOS12.nmos.vth0
        assert point.tech.name.endswith("-ff")

    def test_corner_changes_circuit_current(self, tech):
        """A simple mirror delivers more current at ff than ss."""
        from repro.circuits.library import build_simple_mirror_cell
        from repro.spice import dc_operating_point

        results = {}
        for corner in ("ff", "ss"):
            cell = build_simple_mirror_cell(apply_corner(tech, corner))
            op = dc_operating_point(cell.circuit)
            results[corner] = op.mos_op("mn1").vgs
        # same current forced, so the slow corner needs more gate drive
        assert results["ss"] > results["ff"]
