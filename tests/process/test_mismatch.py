"""Pelgrom mismatch model and Monte Carlo sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.process import CMOS12, MismatchSampler
from repro.process.mismatch import PelgromModel


class TestPelgrom:
    def test_sigma_scales_inverse_sqrt_area(self):
        model = PelgromModel(avt_mv_um=20.0, abeta_pct_um=2.0)
        s1 = model.sigma_vt(10e-6, 10e-6)
        s2 = model.sigma_vt(20e-6, 20e-6)
        assert s1 / s2 == pytest.approx(2.0, rel=1e-9)

    def test_known_value(self):
        """AVT=20 mV.um at 100 um^2 -> pair sigma 2 mV, device ~1.41 mV."""
        model = PelgromModel(avt_mv_um=20.0, abeta_pct_um=2.0)
        assert model.sigma_vt(10e-6, 10e-6) * np.sqrt(2.0) == pytest.approx(
            2e-3, rel=1e-6
        )

    @given(w=st.floats(min_value=1e-6, max_value=1e-3),
           l=st.floats(min_value=1e-6, max_value=1e-4))
    @settings(max_examples=25, deadline=None)
    def test_sigma_positive_and_finite(self, w, l):
        model = PelgromModel(avt_mv_um=20.0, abeta_pct_um=2.0)
        assert 0.0 < model.sigma_vt(w, l) < 0.1
        assert 0.0 < model.sigma_beta(w, l) < 1.0


class TestSampler:
    def test_nominal_sampler_returns_zero(self, tech):
        sampler = MismatchSampler.nominal(tech)
        assert sampler.mos_deltas("nmos", 10e-6, 10e-6) == (0.0, 0.0)
        assert sampler.resistor_delta(1e3) == 0.0
        assert sampler.bjt_is_delta() == 0.0

    def test_sampling_statistics(self, tech, rng):
        sampler = MismatchSampler(tech, rng)
        w, l = 20e-6, 20e-6
        draws = np.array([sampler.mos_deltas("nmos", w, l)[0] for _ in range(3000)])
        expected = tech.matching.avt_nmos_mv_um * 1e-3 / 20.0 / np.sqrt(2.0)
        assert draws.mean() == pytest.approx(0.0, abs=3 * expected / np.sqrt(3000))
        assert draws.std() == pytest.approx(expected, rel=0.1)

    def test_pmos_uses_pmos_coefficient(self, tech):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        s_n = MismatchSampler(tech, rng_a).mos_deltas("nmos", 10e-6, 10e-6)[0]
        s_p = MismatchSampler(tech, rng_b).mos_deltas("pmos", 10e-6, 10e-6)[0]
        # same unit normal scaled by different AVT
        ratio = tech.matching.avt_pmos_mv_um / tech.matching.avt_nmos_mv_um
        assert s_p / s_n == pytest.approx(ratio, rel=1e-9)

    def test_resistor_delta_shrinks_with_value(self, tech, rng):
        """Larger resistance -> more squares -> more area -> better match."""
        sampler = MismatchSampler(tech, rng)
        small = np.std([sampler.resistor_delta(100.0) for _ in range(500)])
        large = np.std([sampler.resistor_delta(100e3) for _ in range(500)])
        assert large < small

    def test_reproducibility_with_seeded_rng(self, tech):
        a = MismatchSampler(tech, np.random.default_rng(42)).mos_deltas("nmos", 1e-5, 1e-5)
        b = MismatchSampler(tech, np.random.default_rng(42)).mos_deltas("nmos", 1e-5, 1e-5)
        assert a == b


class TestMismatchInCircuits:
    def test_offset_appears_with_mismatch(self, tech):
        """A mismatched mic amp shows input offset; nominal shows none."""
        from repro.circuits.micamp import build_mic_amp
        from repro.spice import dc_operating_point

        nominal = build_mic_amp(tech, gain_code=5)
        op_nom = dc_operating_point(nominal.circuit)
        offset_nom = abs(op_nom.vdiff("outp", "outn"))

        sampler = MismatchSampler(tech, np.random.default_rng(3))
        skewed = build_mic_amp(tech, gain_code=5, mismatch=sampler)
        op_mc = dc_operating_point(skewed.circuit)
        offset_mc = abs(op_mc.vdiff("outp", "outn"))
        assert offset_nom < 1e-3
        assert offset_mc > offset_nom
