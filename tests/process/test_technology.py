"""Technology model: parameters, derived helpers, overrides."""

import pytest

from repro.process import CMOS12
from repro.process.technology import PolyResistorSpec, Technology


class TestCmos12:
    def test_paper_thresholds(self):
        """'typical threshold voltage of 0.7 V'."""
        assert CMOS12.nmos.vth0 == pytest.approx(0.70)
        assert CMOS12.pmos.vth0 == pytest.approx(0.70)

    def test_minimum_length_is_1_2_um(self):
        assert CMOS12.l_min == pytest.approx(1.2e-6)

    def test_split_supply_totals_2_6(self):
        assert CMOS12.supply_total == pytest.approx(2.6)
        assert CMOS12.vdd_nominal == pytest.approx(1.3)

    def test_nmos_stronger_than_pmos(self):
        assert CMOS12.nmos.kp > 2.0 * CMOS12.pmos.kp

    def test_mos_lookup(self):
        assert CMOS12.mos("nmos") is CMOS12.nmos
        assert CMOS12.mos("pmos") is CMOS12.pmos
        with pytest.raises(ValueError):
            CMOS12.mos("finfet")

    def test_with_supply(self):
        t = CMOS12.with_supply(1.5, -1.5)
        assert t.supply_total == pytest.approx(3.0)
        assert t.nmos is CMOS12.nmos  # models untouched

    def test_scaled_overrides(self):
        t = CMOS12.scaled(nmos={"vth0": 0.8})
        assert t.nmos.vth0 == pytest.approx(0.8)
        assert t.pmos.vth0 == pytest.approx(CMOS12.pmos.vth0)


class TestPolyResistor:
    def test_squares(self):
        spec = PolyResistorSpec(sheet_ohm=25.0)
        assert spec.squares(2.5e3) == pytest.approx(100.0)

    def test_area_scales_with_width_squared(self):
        spec = PolyResistorSpec(sheet_ohm=25.0)
        assert spec.area_um2(1e3, width_um=4.0) == pytest.approx(
            4.0 * spec.area_um2(1e3, width_um=2.0)
        )

    def test_positive_tempco(self):
        """Poly tc1 > 0 is what flattens the PTAT bias slope (Sec. 2.1)."""
        assert CMOS12.poly.tc1 > 0.0
