"""Store hardening under attack: corruption, truncation, locked index.

Everything is driven through the public APIs (``run_campaign`` with a
store, ``ResultStore.get/verify``) and every recovery is checked for the
byte-identity contract: a store that lied, lost files or locked up must
still produce exactly the bytes of a fault-free run.
"""

import sqlite3
import subprocess
import sys

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.faults import FaultPlan, FaultRule
from repro.store import ResultStore

SPEC = CampaignSpec(builder="bias", corners=("tt", "ss"),
                    temps_c=(25.0, 85.0), measurements=("bias_current_ua",))


@pytest.fixture(scope="module")
def reference():
    return run_campaign(SPEC)


def _first_payload(store: ResultStore):
    key = store.keys()[0]
    return key, store._object_path(key)


class TestPayloadCorruption:
    def test_corrupt_payload_quarantined_and_recomputed(self, tmp_path,
                                                        reference):
        store = ResultStore(tmp_path / "s")
        run_campaign(SPEC, store=store)
        key, path = _first_payload(store)
        path.write_text('{"bias_current_ua": 999.0}')   # valid JSON, wrong bytes

        again = run_campaign(SPEC, store=ResultStore(tmp_path / "s"))
        assert again.data.tobytes() == reference.data.tobytes()
        assert again.store_stats["executed_units"] == 1    # only the bad one
        assert again.store_stats["reused_units"] == SPEC.n_units - 1
        # evidence preserved, key healed on the recompute
        assert list((tmp_path / "s" / "quarantine").iterdir())
        assert ResultStore(tmp_path / "s").get(key) is not None

    def test_truncated_payload_reads_as_miss(self, tmp_path, reference):
        store = ResultStore(tmp_path / "s")
        run_campaign(SPEC, store=store)
        key, path = _first_payload(store)
        path.write_text(path.read_text()[:7])             # torn mid-write

        fresh = ResultStore(tmp_path / "s")
        assert fresh.get(key) is None
        assert fresh.fault_stats()["quarantined"] == 1
        again = run_campaign(SPEC, store=fresh)
        assert again.data.tobytes() == reference.data.tobytes()

    def test_vanished_payload_drops_dangling_row(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        run_campaign(SPEC, store=store)
        key, path = _first_payload(store)
        path.unlink()
        n = len(store)
        assert store.get(key) is None
        assert len(store) == n - 1                        # row self-healed

    def test_injected_read_error_is_transient_not_fatal(self, tmp_path,
                                                        reference):
        store = ResultStore(tmp_path / "s")
        run_campaign(SPEC, store=store)
        plan = FaultPlan([FaultRule("store.payload_read", raises=OSError,
                                    times=SPEC.n_units)])
        with plan.activate():
            hurt = run_campaign(SPEC, store=store)        # every read fails
        assert hurt.store_stats["reused_units"] == 0
        assert hurt.data.tobytes() == reference.data.tobytes()
        assert store.fault_stats()["read_errors"] == SPEC.n_units
        # nothing was quarantined — the files are fine, the reads failed
        assert "quarantined" not in store.fault_stats()
        warm = run_campaign(SPEC, store=store)
        assert warm.store_stats["reused_units"] == SPEC.n_units


class TestIndexRetry:
    def test_transient_locked_index_is_absorbed(self, tmp_path, reference):
        store = ResultStore(tmp_path / "s", index_backoff_s=0.001)
        locked = sqlite3.OperationalError("database is locked")
        plan = FaultPlan([FaultRule("store.index", raises=locked, times=2)])
        with plan.activate():
            result = run_campaign(SPEC, store=store)
        assert result.data.tobytes() == reference.data.tobytes()
        assert result.store_stats["store_errors"] == 0     # retries hid it
        assert store.fault_stats()["index_retries"] == 2
        assert len(store) == SPEC.n_units

    def test_persistently_locked_index_degrades_the_run(self, tmp_path,
                                                        reference):
        store = ResultStore(tmp_path / "s", index_retries=2,
                            index_backoff_s=0.001)
        locked = sqlite3.OperationalError("database is locked")
        with FaultPlan([FaultRule("store.index", raises=locked)]).activate():
            result = run_campaign(SPEC, store=store)
        # engine-only degradation: full recompute, correct bytes, flagged
        assert result.data.tobytes() == reference.data.tobytes()
        assert result.store_stats["executed_units"] == SPEC.n_units
        assert result.store_stats["store_errors"] == 2     # read + write-back


class TestVerify:
    def test_verify_reports_and_quarantines(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        run_campaign(SPEC, store=store)
        healthy = store.verify()
        assert healthy == {"checked": SPEC.n_units, "intact": SPEC.n_units,
                           "quarantined": 0, "missing": 0}

        key, path = _first_payload(store)
        path.write_text("garbage")
        _key2 = store.keys()[1]
        store._object_path(_key2).unlink()

        report = ResultStore(tmp_path / "s").verify()
        assert report["checked"] == SPEC.n_units
        assert report["intact"] == SPEC.n_units - 2
        assert report["quarantined"] == 1
        assert report["missing"] == 1

    def test_cli_store_verify_exit_codes(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        run_campaign(SPEC, store=store)
        _key, path = _first_payload(store)
        path.write_text("garbage")

        script = ("import sys; from repro.cli import main; "
                  "sys.exit(main(sys.argv[1:]))")
        bad = subprocess.run(
            [sys.executable, "-c", script, "store", "verify",
             "--store", str(tmp_path / "s")],
            capture_output=True, text=True)
        assert bad.returncode == 1
        assert "1 quarantined" in bad.stdout

        # the sweep removed the corruption; a second pass is clean
        good = subprocess.run(
            [sys.executable, "-c", script, "store", "verify",
             "--store", str(tmp_path / "s")],
            capture_output=True, text=True)
        assert good.returncode == 0
        assert f"{SPEC.n_units - 1} checked" in good.stdout


class TestLegacySchema:
    def test_pre_hash_store_is_migrated_in_place(self, tmp_path):
        root = tmp_path / "old"
        root.mkdir()
        conn = sqlite3.connect(str(root / "index.db"))
        with conn:
            conn.execute(
                "CREATE TABLE entries ("
                " key TEXT PRIMARY KEY, kind TEXT NOT NULL,"
                " path TEXT NOT NULL, nbytes INTEGER NOT NULL,"
                " created_at REAL NOT NULL,"
                " meta TEXT NOT NULL DEFAULT '{}')")
        conn.close()

        store = ResultStore(root)
        store.put("k1", {"x": 1.5})
        assert store.get("k1") == {"x": 1.5}
        cols = {row[1] for row in
                store.conn.execute("PRAGMA table_info(entries)")}
        assert "sha256" in cols

    def test_legacy_rows_without_hash_still_guarded_by_json(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("k1", {"x": 1.5})
        with store.conn as conn:                  # simulate a legacy row
            conn.execute("UPDATE entries SET sha256 = ''")
        assert ResultStore(tmp_path / "s").get("k1") == {"x": 1.5}

        store._object_path("k1").write_text("{torn")
        fresh = ResultStore(tmp_path / "s")
        assert fresh.get("k1") is None            # JSON guard still fires
        assert fresh.fault_stats()["quarantined"] == 1
