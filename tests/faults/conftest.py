"""Chaos-suite hygiene: no test may leak an armed fault plan."""

import pytest

from repro.faults import active_plan, deactivate


@pytest.fixture(autouse=True)
def disarm_after_test():
    assert active_plan() is None, "a previous test leaked an armed plan"
    yield
    deactivate()
