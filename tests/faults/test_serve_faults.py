"""Serve-layer chaos: timeouts, dead/hung workers, store degradation,
journal torture.

Every scenario drives the public :class:`CharacterizationService` /
:class:`JobQueue` APIs and closes the loop on the stack's contracts:
recovered results byte-identical to fault-free runs, no job lost, no
unit executed twice.
"""

import json
import time

import pytest

from repro.campaign import run_campaign
from repro.faults import FaultCrash, FaultError, FaultPlan, FaultRule
from repro.serve import CharacterizationService
from repro.serve import jobs as J
from repro.serve.validate import campaign_spec_from_dict
from repro.store import ResultStore

PAYLOAD = {"builder": "bias", "corners": ["tt"], "temps_c": [25.0, 85.0],
           "measurements": ["bias_current_ua"]}


def _drain(svc):
    svc.queue.close()
    svc.stop(timeout=10.0)


class TestJobTimeout:
    def test_overrunning_job_fails_with_timeout_not_a_wedge(self, tmp_path):
        svc = CharacterizationService(workers=1, job_timeout=0.05,
                                      watchdog_interval=0).start()
        try:
            # the injected stall happens before execution; the budget is
            # anchored at dequeue, so the first progress step detects it
            plan = FaultPlan([FaultRule("serve.job", sleep=0.2, times=1)])
            with plan.activate():
                job = svc.submit_campaign(PAYLOAD)
                assert job.wait(timeout=30)
            assert job.state == J.FAILED
            assert "wall-clock budget" in job.error
            assert svc.metrics.get("jobs_timeout") == 1

            # the worker survived and serves the next job normally
            ok = svc.submit_campaign(PAYLOAD)
            assert ok.wait(timeout=30) and ok.state == J.DONE
        finally:
            _drain(svc)

    def test_fast_job_unaffected_by_budget(self):
        svc = CharacterizationService(workers=1, job_timeout=60.0,
                                      watchdog_interval=0).start()
        try:
            job = svc.submit_campaign(PAYLOAD)
            assert job.wait(timeout=30) and job.state == J.DONE
            direct = run_campaign(campaign_spec_from_dict(PAYLOAD))
            assert svc.result_text(job) == direct.to_json() + "\n"
        finally:
            _drain(svc)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="job_timeout"):
            CharacterizationService(job_timeout=0.0)


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestDeadWorker:
    """The injected FaultCrash escapes the worker thread by design —
    pytest's unhandled-thread-exception warning is the expected noise of
    a deliberately killed worker."""
    def test_crashed_worker_is_replaced_and_job_requeued(self):
        svc = CharacterizationService(workers=1,
                                      watchdog_interval=0.05).start()
        try:
            plan = FaultPlan([FaultRule("serve.job", raises=FaultCrash,
                                        times=1)])
            with plan.activate():
                job = svc.submit_campaign(PAYLOAD)
                # FaultCrash sails through the except-Exception isolation,
                # kills the worker thread, requeues the job; the watchdog
                # replaces the thread and the replacement completes it.
                assert job.wait(timeout=30)
            assert job.state == J.DONE
            assert job.requeues == 1
            assert svc.metrics.get("workers_died") == 1
            assert svc.metrics.get("jobs_requeued") == 1
            assert svc.metrics.get("workers_replaced") >= 1

            direct = run_campaign(campaign_spec_from_dict(PAYLOAD))
            assert svc.result_text(job) == direct.to_json() + "\n"
            assert svc.health()["status"] == "ok"
        finally:
            _drain(svc)

    def test_job_that_kills_every_worker_eventually_fails(self):
        svc = CharacterizationService(workers=1,
                                      watchdog_interval=0.05).start()
        try:
            # crashes forever: after max_requeues the job must FAIL
            # instead of ping-ponging between replacement workers
            plan = FaultPlan([FaultRule("serve.job", raises=FaultCrash)])
            with plan.activate():
                job = svc.submit_campaign(PAYLOAD)
                assert job.wait(timeout=30)
            assert job.state == J.FAILED
            assert "worker died" in job.error
            assert job.requeues == svc.queue.max_requeues
            assert svc.metrics.get("workers_died") == \
                svc.queue.max_requeues + 1
        finally:
            _drain(svc)


class TestHungWorker:
    def test_hung_worker_retired_and_stop_reports_straggler(self):
        svc = CharacterizationService(workers=1, job_timeout=0.1,
                                      watchdog_interval=0.05).start()
        try:
            # a sleep the cooperative deadline cannot interrupt: the
            # worker is genuinely stuck inside "user" code
            plan = FaultPlan([FaultRule("serve.job", sleep=2.0, times=1)])
            with plan.activate():
                stuck = svc.submit_campaign(PAYLOAD)
                deadline = time.monotonic() + 10
                while (svc.metrics.get("workers_hung") == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
            assert svc.metrics.get("workers_hung") == 1
            assert svc.health()["status"] == "degraded"
            assert svc.health()["hung_workers"] == 1

            # the replacement keeps the pool serving (distinct payload:
            # the stuck job still owns PAYLOAD's coalescing fingerprint)
            ok = svc.submit_campaign(dict(PAYLOAD, temps_c=[25.0]))
            assert ok.wait(timeout=30) and ok.state == J.DONE

            # stop() must return promptly and name the straggler
            t0 = time.monotonic()
            stragglers = svc.stop(timeout=0.3)
            assert time.monotonic() - t0 < 2.0
            assert len(stragglers) == 1
            assert svc.health()["status"] == "degraded"
            assert svc.health()["stragglers"] == stragglers
            assert svc.metrics.get("stop_stragglers") == 1
            # the hung job eventually resolves or stays running; either
            # way the service never blocked on it
            assert stuck.state in (J.QUEUED, J.RUNNING, J.DONE, J.FAILED)
        finally:
            svc.stop(timeout=3.0)


class TestStoreDegradation:
    def _service(self, tmp_path):
        store = ResultStore(tmp_path / "store", index_retries=2,
                            index_backoff_s=0.001)
        return CharacterizationService(store=store, workers=1,
                                       watchdog_interval=0,
                                       store_retry_interval=1000.0).start()

    def test_unavailable_store_degrades_to_engine_only(self, tmp_path):
        svc = self._service(tmp_path)
        try:
            locked = FaultPlan([FaultRule(
                "store.index",
                raises=__import__("sqlite3").OperationalError("locked"))])
            with locked.activate():
                job = svc.submit_campaign(PAYLOAD)
                assert job.wait(timeout=30)
            assert job.state == J.DONE               # job survived
            assert job.result.store_stats is None    # ran engine-only
            assert svc.store_degraded
            assert svc.health()["status"] == "degraded"
            assert svc.health()["store_degraded"] is True
            assert svc.metrics_snapshot()["store_degraded"] is True
            assert svc.metrics.get("store_degraded_events") == 1

            direct = run_campaign(campaign_spec_from_dict(PAYLOAD))
            assert svc.result_text(job) == direct.to_json() + "\n"
        finally:
            _drain(svc)

    def test_store_recovers_via_probe(self, tmp_path):
        svc = self._service(tmp_path)
        try:
            locked = FaultPlan([FaultRule(
                "store.index",
                raises=__import__("sqlite3").OperationalError("locked"))])
            with locked.activate():
                svc.submit_campaign(PAYLOAD).wait(timeout=30)
            assert svc.store_degraded

            svc.store_retry_interval = 0.0           # due for a probe now
            job = svc.submit_campaign(PAYLOAD)
            assert job.wait(timeout=30) and job.state == J.DONE
            assert not svc.store_degraded
            assert svc.metrics.get("store_recovered") == 1
            assert svc.health()["status"] == "ok"
            # the store is live again: this run populated it, so a
            # resubmission is a warm hit that never queues
            warm = svc.submit_campaign(PAYLOAD)
            assert warm.warm and warm.state == J.DONE
        finally:
            _drain(svc)


class TestJournalTorture:
    """Crash at *every* journal write point; restart; count the losses
    (there must be none)."""

    def _drive(self, queue):
        """One full job lifecycle through the queue's public API."""
        job = J.Job(id="torture000j", kind="campaign", payload=dict(PAYLOAD),
                    fingerprint="fp-torture")
        job, _ = queue.submit(job)
        got = queue.next_job()
        assert got is job
        queue.finish(job, J.DONE)

    def test_crash_at_every_write_point_loses_no_job(self, tmp_path):
        # the lifecycle journals 3 times, each with 2 crash stages
        for k in range(6):
            jdir = tmp_path / f"j{k}"
            queue = J.JobQueue(journal_dir=jdir)
            plan = FaultPlan([FaultRule("jobs.journal_write",
                                        raises=FaultError, after=k, times=1)])
            crashed = False
            with plan.activate():
                try:
                    self._drive(queue)
                except FaultError:
                    crashed = True
            assert crashed == (k < 6)
            # the "process" dies here: the in-memory queue is abandoned

            restored = J.JobQueue(journal_dir=jdir)
            assert restored.journal_corrupt == 0     # never a torn file
            if k < 2:
                # crashed before (or mid-replace of) the submit snapshot:
                # the submitter saw the failure, so nothing is lost even
                # though nothing is restored
                assert len(restored) == 0
                continue
            # every later crash point leaves the acknowledged job on
            # disk in its last *completed* snapshot (queued or running);
            # either way the restart re-enqueues it exactly once
            assert len(restored) == 1
            job = restored.get("torture000j")
            assert job is not None
            assert job.state == J.QUEUED
            assert restored.depth() == 1
            assert restored.journal_recovered == 1

    def test_torn_journal_file_is_counted_and_quarantined(self, tmp_path):
        jdir = tmp_path / "j"
        queue = J.JobQueue(journal_dir=jdir)
        job = J.Job(id="okjob000000a", kind="campaign", payload={},
                    fingerprint="fp1", state=J.DONE)
        job.finished_at = job.created_at
        queue.register(job)
        (jdir / "deadbeef0000.json").write_text('{"id": "deadbeef0000", tr')

        restored = J.JobQueue(journal_dir=jdir)
        assert restored.journal_corrupt == 1
        assert restored.journal_recovered == 1       # the intact one
        assert restored.get("okjob000000a") is not None
        assert (jdir / "deadbeef0000.json.corrupt").exists()
        assert not (jdir / "deadbeef0000.json").exists()

    def test_journal_counters_surface_in_service_metrics(self, tmp_path):
        jdir = tmp_path / "j"
        (jdir).mkdir()
        (jdir / "torn00000000.json").write_text("{")
        svc = CharacterizationService(journal_dir=jdir, workers=1,
                                      watchdog_interval=0).start()
        try:
            snap = svc.metrics_snapshot()
            assert snap["journal_corrupt"] == 1
            assert snap["journal_recovered"] == 0
        finally:
            _drain(svc)


class TestRestartRecovery:
    def test_interrupted_job_restarts_with_zero_reexecution(self, tmp_path):
        """Crash after the store write-back but before the final journal
        write: the restarted service must finish the job from the store
        without executing a single unit."""
        store_root = tmp_path / "store"
        jdir = tmp_path / "journal"

        svc1 = CharacterizationService(store=ResultStore(store_root),
                                       journal_dir=jdir, workers=1,
                                       watchdog_interval=0).start()
        job = svc1.submit_campaign(PAYLOAD)
        assert job.wait(timeout=30) and job.state == J.DONE
        text1 = svc1.result_text(job)
        _drain(svc1)

        # simulate the crash window: the store has every unit, but the
        # journal still says the job was mid-flight
        path = jdir / f"{job.id}.json"
        snap = json.loads(path.read_text())
        snap["state"] = J.RUNNING
        path.write_text(json.dumps(snap, sort_keys=True))

        svc2 = CharacterizationService(store=ResultStore(store_root),
                                       journal_dir=jdir, workers=1,
                                       watchdog_interval=0).start()
        try:
            restored = svc2.queue.get(job.id)
            assert restored is not None
            assert restored.wait(timeout=30)
            assert restored.state == J.DONE
            assert svc2.metrics.get("units_executed") == 0    # all warm
            assert svc2.metrics.get("units_reused") == 2
            assert svc2.metrics_snapshot()["journal_recovered"] == 1
            assert svc2.result_text(restored) == text1
        finally:
            _drain(svc2)
