"""The injection machinery itself: determinism, gating, arming scopes."""

import sqlite3

import pytest

from repro.faults import (
    FaultCrash,
    FaultError,
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    deactivate,
    fault_point,
    plan_from_env,
)


class TestDisarmed:
    def test_fault_point_is_inert_without_a_plan(self):
        assert active_plan() is None
        for _ in range(1000):
            fault_point("store.payload_read", key="k")   # must not raise

    def test_context_manager_restores_previous_plan(self):
        outer = FaultPlan([])
        inner = FaultPlan([])
        previous = activate(outer)
        assert previous is None
        with inner.activate():
            assert active_plan() is inner
        assert active_plan() is outer
        deactivate()
        assert active_plan() is None


class TestTriggerGating:
    def test_default_action_raises_fault_error(self):
        with FaultPlan([FaultRule("p")]).activate():
            with pytest.raises(FaultError, match="injected fault at 'p'"):
                fault_point("p")

    def test_times_caps_triggers(self):
        plan = FaultPlan([FaultRule("p", times=2)])
        with plan.activate():
            for _ in range(2):
                with pytest.raises(FaultError):
                    fault_point("p")
            fault_point("p")                       # budget exhausted
        assert plan.triggered("p") == 2
        assert plan.rules[0].hits == 3

    def test_after_skips_leading_hits(self):
        plan = FaultPlan([FaultRule("p", after=2, times=1)])
        with plan.activate():
            fault_point("p")
            fault_point("p")
            with pytest.raises(FaultError):
                fault_point("p")

    def test_when_predicate_sees_the_payload(self):
        plan = FaultPlan([FaultRule("p", when=lambda ctx: ctx["attempt"] == 0)])
        with plan.activate():
            with pytest.raises(FaultError):
                fault_point("p", attempt=0)
            fault_point("p", attempt=1)
        assert plan.log == [("p", 0, {"attempt": 0})]

    def test_glob_point_matching(self):
        plan = FaultPlan([FaultRule("store.*", times=1)])
        with plan.activate():
            fault_point("jobs.journal_write")      # no match
            with pytest.raises(FaultError):
                fault_point("store.index")

    def test_custom_exception_class_and_instance(self):
        boom = sqlite3.OperationalError("database is locked")
        plan = FaultPlan([FaultRule("a", raises=OSError, times=1),
                          FaultRule("b", raises=boom, times=1)])
        with plan.activate():
            with pytest.raises(OSError):
                fault_point("a")
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                fault_point("b")

    def test_action_callable_receives_ctx(self):
        seen = []
        plan = FaultPlan([FaultRule("p", action=seen.append)])
        with plan.activate():
            fault_point("p", key="abc")
        assert seen == [{"key": "abc"}]

    def test_fault_crash_is_untrappable_by_except_exception(self):
        with FaultPlan([FaultRule("p", raises=FaultCrash)]).activate():
            with pytest.raises(BaseException) as excinfo:
                try:
                    fault_point("p")
                except Exception:                  # job-isolation style
                    pytest.fail("FaultCrash must not be caught as Exception")
            assert excinfo.type is FaultCrash


class TestSeededProbability:
    def test_same_seed_replays_the_same_schedule(self):
        def schedule(seed):
            plan = FaultPlan([FaultRule("p", probability=0.3)], seed=seed)
            fired = []
            with plan.activate():
                for i in range(200):
                    try:
                        fault_point("p", i=i)
                        fired.append(False)
                    except FaultError:
                        fired.append(True)
            return fired

        a, b = schedule(7), schedule(7)
        assert a == b
        assert 20 < sum(a) < 120                   # roughly 30 %
        assert schedule(8) != a                    # seed actually matters

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("p", probability=1.5)
        with pytest.raises(ValueError, match="times"):
            FaultRule("p", times=0)


class TestEnvGrammar:
    def test_full_spec_round_trip(self):
        plan = plan_from_env(
            "seed=7;store.index:raise=sqlite3.OperationalError:p=0.05;"
            "jobs.journal_write:times=1:after=3;campaign.pool_chunk:kill;"
            "serve.job:sleep=0.5")
        assert plan.seed == 7
        r0, r1, r2, r3 = plan.rules
        assert r0.point == "store.index"
        assert r0.raises is sqlite3.OperationalError
        assert r0.probability == 0.05
        assert (r1.times, r1.after) == (1, 3)
        assert r2.kill is True
        assert r3.sleep == 0.5 and r3.raises is None

    def test_unknown_exception_and_option_are_loud(self):
        with pytest.raises(ValueError, match="unknown exception"):
            plan_from_env("p:raise=Nonsense")
        with pytest.raises(ValueError, match="unknown option"):
            plan_from_env("p:frobnicate=1")
