"""Process-pool chaos: killed workers, broken pools, exhausted retries.

The kill rules use ``os._exit`` inside forked pool workers — a real
SIGKILL-grade death, not an exception — keyed off the deterministic
``attempt`` payload so the same chunks die on the same dispatch every
run.  Recovery must re-execute only the lost chunks and still match the
serial executor byte for byte.
"""

import pytest

from repro.campaign import (
    CampaignExecutionError,
    CampaignSpec,
    ProcessPoolCampaignExecutor,
    run_campaign,
)
from repro.faults import FaultPlan, FaultRule
from repro.store import ResultStore

SPEC = CampaignSpec(builder="bias", corners=("tt", "ss"),
                    temps_c=(25.0, 85.0), measurements=("bias_current_ua",))


@pytest.fixture(scope="module")
def reference():
    return run_campaign(SPEC)


class TestWorkerDeath:
    def test_killed_workers_recover_byte_identical(self, reference):
        # every chunk's first dispatch dies; the retry (attempt 1) runs
        plan = FaultPlan([FaultRule("campaign.pool_chunk", kill=True,
                                    when=lambda ctx: ctx["attempt"] == 0)])
        executor = ProcessPoolCampaignExecutor(max_workers=2)
        with plan.activate():
            result = run_campaign(SPEC, executor=executor, chunk_size=1)
        assert executor.restarts >= 1
        assert result.data.tobytes() == reference.data.tobytes()
        assert result.to_json() == reference.to_json()

    def test_partial_death_reexecutes_only_lost_chunks(self, reference,
                                                       tmp_path):
        # only the first chunk's first dispatch dies; with a store
        # attached, the merged result proves per-chunk recovery did not
        # disturb ordering or values
        plan = FaultPlan([FaultRule(
            "campaign.pool_chunk", kill=True,
            when=lambda ctx: ctx["attempt"] == 0, times=1)])
        store = ResultStore(tmp_path / "s")
        with plan.activate():
            result = run_campaign(
                SPEC, executor=ProcessPoolCampaignExecutor(max_workers=2),
                chunk_size=1, store=store)
        assert result.data.tobytes() == reference.data.tobytes()
        assert len(store) == SPEC.n_units
        warm = run_campaign(SPEC, store=store)
        assert warm.store_stats["reused_units"] == SPEC.n_units
        assert warm.data.tobytes() == reference.data.tobytes()

    def test_exhausted_retries_name_the_lost_units(self):
        # every dispatch dies, every attempt: the run must fail with a
        # structured error listing exactly the units that have no records
        plan = FaultPlan([FaultRule("campaign.pool_chunk", kill=True)])
        executor = ProcessPoolCampaignExecutor(max_workers=2, max_attempts=2)
        with plan.activate():
            with pytest.raises(CampaignExecutionError) as excinfo:
                run_campaign(SPEC, executor=executor, chunk_size=2)
        lost = excinfo.value.units
        assert sorted(u.index for u in lost) == \
            sorted(u.index for u in SPEC.expand())
        assert "after 2 attempts" in str(excinfo.value)

    def test_max_attempts_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ProcessPoolCampaignExecutor(max_attempts=0)

    def test_in_worker_exception_propagates_without_retry(self):
        # a deterministic *exception* in a healthy worker is a bug, not
        # a lost worker: it must surface unchanged, with no pool rebuild
        plan = FaultPlan([FaultRule("campaign.pool_chunk",
                                    raises=ValueError, times=1)])
        executor = ProcessPoolCampaignExecutor(max_workers=2)
        with plan.activate():
            with pytest.raises(ValueError, match="injected fault"):
                run_campaign(SPEC, executor=executor, chunk_size=2)
        assert executor.restarts == 0
