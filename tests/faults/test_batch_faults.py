"""Chaos on the batched executor: injected group failures must degrade
to the serial per-unit path — never change a byte of the results.

``campaign.batch_group`` fires before each tensor group executes, so a
raise-rule there simulates everything the group-level ``except`` guards
against (structure surprises, solver blowups, batched-measurement
bugs): the group must re-run through plain ``run_unit`` semantics and
the export must stay byte-identical to the reference, with the
``fallback_units`` counter telling the truth about what happened.
"""

import pytest

from repro.campaign import (
    BatchedCampaignExecutor,
    CampaignSpec,
    SerialExecutor,
    run_campaign,
)
from repro.faults import FaultPlan, FaultRule

SPEC = CampaignSpec(
    builder="micamp", corners=("tt", "ss"), temps_c=(25.0, 85.0),
    seeds=(0, 1), gain_codes=(5,),
    measurements=("offset_v", "iq_ma", "gain_1khz_db", "psrr_1khz_db"),
)


@pytest.fixture(scope="module")
def reference():
    return run_campaign(SPEC, executor=SerialExecutor())


class TestBatchGroupFaults:
    def test_every_group_failing_falls_back_byte_identical(self, reference):
        plan = FaultPlan([FaultRule("campaign.batch_group")])
        executor = BatchedCampaignExecutor()
        with plan.activate():
            result = run_campaign(SPEC, executor=executor)
        assert result.to_json() == reference.to_json()
        assert executor.stats["fallback_units"] == SPEC.n_units
        assert executor.stats.get("batched_units", 0) == 0

    def test_single_group_failure_is_contained(self, reference):
        plan = FaultPlan([FaultRule("campaign.batch_group", times=1)])
        executor = BatchedCampaignExecutor(batch_size=4)
        with plan.activate():
            result = run_campaign(SPEC, executor=executor)
        assert result.to_json() == reference.to_json()
        assert executor.stats["fallback_units"] == 4
        assert executor.stats["batched_units"] == SPEC.n_units - 4

    def test_flaky_groups_under_probability_stay_correct(self, reference):
        plan = FaultPlan([FaultRule("campaign.batch_group",
                                    probability=0.5)], seed=7)
        executor = BatchedCampaignExecutor(batch_size=2)
        with plan.activate():
            result = run_campaign(SPEC, executor=executor)
        assert result.to_json() == reference.to_json()
        total = (executor.stats.get("batched_units", 0)
                 + executor.stats.get("fallback_units", 0))
        assert total == SPEC.n_units
