"""Shared fixtures.

Expensive artifacts (built amplifiers, solved operating points, noise
sweeps) are session-scoped: dozens of tests read them, none mutates them
without restoring state (the mutating tests build their own instances).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.micamp import build_mic_amp
from repro.circuits.powerbuffer import build_power_buffer
from repro.process import CMOS12
from repro.spice.analysis import log_freqs
from repro.spice.dc import dc_operating_point
from repro.spice.noise import noise_analysis


@pytest.fixture(scope="session")
def tech():
    return CMOS12


@pytest.fixture(scope="session")
def mic_amp_40db(tech):
    """Built mic amp at the 40 dB code (shared, treat as read-only)."""
    return build_mic_amp(tech, gain_code=5, switch_type="mos")


@pytest.fixture(scope="session")
def mic_amp_op(mic_amp_40db):
    return dc_operating_point(mic_amp_40db.circuit)


@pytest.fixture(scope="session")
def mic_amp_noise(mic_amp_40db, mic_amp_op):
    freqs = log_freqs(10.0, 100e3, 12)
    return noise_analysis(mic_amp_op, freqs, mic_amp_40db.outp, mic_amp_40db.outn)


@pytest.fixture(scope="session")
def buffer_inverting(tech):
    """Built power buffer, Fig. 9 configuration (shared, read-only)."""
    return build_power_buffer(tech, feedback="inverting", load="resistive")


@pytest.fixture(scope="session")
def buffer_op(buffer_inverting):
    return dc_operating_point(buffer_inverting.circuit)


@pytest.fixture
def rng():
    return np.random.default_rng(20260611)
