"""Cross-executor equivalence: serial / pool / batched, every builder.

The batched executor re-implements stamping, Newton and the AC probes
as unit-tensor operations; the pool executor re-implements scheduling
with persistent pre-warmed workers.  Neither is allowed to move a
single bit: for every registered builder the three executors must
produce byte-identical ``to_json()`` exports from the same spec.  JSON
bytes are the strictest practical surface — they capture values, key
order, row order and float repr in one comparison.
"""

import pathlib

import pytest

from repro.campaign import (
    BatchedCampaignExecutor,
    CampaignSpec,
    ProcessPoolCampaignExecutor,
    SerialExecutor,
    run_campaign,
)

# One spec per registered builder, measurements chosen to exercise every
# batched implementation (DC reads, branch currents, gain, PSRR/CMRR
# two-column solves) at least once across the matrix.
BUILDER_SPECS = {
    "micamp": CampaignSpec(
        builder="micamp", corners=("tt", "ss"), temps_c=(-20.0, 85.0),
        seeds=(0, 1), gain_codes=(0, 5),
        measurements=("offset_v", "iq_ma", "gain_1khz_db",
                      "psrr_1khz_db", "cmrr_1khz_db"),
    ),
    "powerbuffer": CampaignSpec(
        builder="powerbuffer", corners=("tt", "ff"), temps_c=(25.0, 85.0),
        seeds=(0, 1), gain_codes=(None,),
        measurements=("offset_v", "iq_ma", "gain_1khz_db",
                      "psrr_1khz_db", "cmrr_1khz_db"),
    ),
    "bias": CampaignSpec(
        builder="bias", corners=("tt", "ss"), temps_c=(-20.0, 25.0, 85.0),
        seeds=(0, 1), gain_codes=(None,),
        measurements=("bias_current_ua", "offset_v", "iq_ma"),
    ),
    "bandgap": CampaignSpec(
        builder="bandgap", corners=("tt", "fs"), temps_c=(-20.0, 25.0, 85.0),
        seeds=(0, 1), gain_codes=(None,),
        measurements=("vref_mv", "offset_v", "iq_ma"),
    ),
}


@pytest.fixture(scope="module")
def serial_json():
    return {
        name: run_campaign(spec, executor=SerialExecutor()).to_json()
        for name, spec in BUILDER_SPECS.items()
    }


class TestBatchedEquivalence:
    @pytest.mark.parametrize("builder", sorted(BUILDER_SPECS))
    def test_batched_byte_identical(self, builder, serial_json):
        spec = BUILDER_SPECS[builder]
        executor = BatchedCampaignExecutor()
        result = run_campaign(spec, executor=executor)
        assert result.to_json() == serial_json[builder]
        # The comparison only means something if the tensor path did the
        # work: every unit must have been batch-solved, none recomputed
        # through the per-unit fallback.
        assert executor.stats["batched_units"] == spec.n_units
        assert executor.stats.get("fallback_units", 0) == 0

    def test_batched_with_serial_only_measurements(self, tmp_path):
        """noise_voice / area_mm2 have no batched implementation: they
        must run serially on the batch's bit-identical operating point
        and still match the reference export byte for byte."""
        spec = CampaignSpec(
            builder="micamp", corners=("tt",), temps_c=(25.0, 85.0),
            seeds=(0, 1), gain_codes=(5,),
            measurements=("offset_v", "noise_voice", "area_mm2"),
        )
        serial = run_campaign(spec, executor=SerialExecutor())
        executor = BatchedCampaignExecutor()
        batched = run_campaign(spec, executor=executor)
        assert batched.to_json() == serial.to_json()
        assert executor.stats["batched_units"] == spec.n_units

    def test_batched_chunk_and_batch_size_invariance(self, serial_json):
        """Chunk boundaries and batch-size choice are scheduling knobs;
        neither may alter a byte of the export."""
        spec = BUILDER_SPECS["micamp"]
        for chunk_size, batch_size in ((3, 2), (7, 64), (None, 1)):
            executor = BatchedCampaignExecutor(batch_size=batch_size)
            result = run_campaign(spec, executor=executor,
                                  chunk_size=chunk_size)
            assert result.to_json() == serial_json["micamp"]


class TestPoolEquivalence:
    @pytest.mark.parametrize("builder", sorted(BUILDER_SPECS))
    def test_pool_byte_identical(self, builder, serial_json):
        spec = BUILDER_SPECS[builder]
        executor = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            result = run_campaign(spec, executor=executor, chunk_size=3)
        finally:
            executor.close()
        assert result.to_json() == serial_json[builder]

    def test_pool_reuses_workers_across_campaigns(self, serial_json):
        """The persistent pool must survive consecutive campaigns of the
        same spec (that is the point of pre-warmed workers) and still
        produce reference bytes each time."""
        spec = BUILDER_SPECS["bias"]
        executor = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            first = run_campaign(spec, executor=executor)
            pool_obj = executor._pool
            assert pool_obj is not None
            second = run_campaign(spec, executor=executor)
            assert executor._pool is pool_obj, "pool was rebuilt between runs"
        finally:
            executor.close()
        assert first.to_json() == serial_json["bias"]
        assert second.to_json() == serial_json["bias"]
        assert executor._pool is None


def _ingested_spec() -> CampaignSpec:
    """An external-deck campaign (the `ingested` builder is the one
    registered builder with no batched implementation)."""
    from repro.ingest import canonical_binding, canonicalize_deck

    deck_dir = pathlib.Path(__file__).parent.parent / "ingest" / "decks"
    return CampaignSpec(
        builder="ingested", corners=("tt", "ss"), temps_c=(25.0, 85.0),
        seeds=(None,), gain_codes=(None,),
        measurements=("offset_v", "iq_ma", "gain_1khz_db"),
        builder_kwargs={
            "netlist": canonicalize_deck(
                (deck_dir / "ota_5t.sp").read_text(), name="netlist"),
            "binding": canonical_binding(
                (deck_dir / "ota_5t.binding.json").read_text()),
        },
    )


@pytest.fixture(scope="module")
def ingested_serial_json():
    return run_campaign(_ingested_spec(), executor=SerialExecutor()).to_json()


class TestIngestedEquivalence:
    """The ingested builder is flagged non-batchable, so the batched
    executor must route every unit through its per-unit serial fallback
    — and all three executors must still export reference bytes."""

    def test_batched_falls_back_per_unit(self, ingested_serial_json):
        spec = _ingested_spec()
        executor = BatchedCampaignExecutor()
        result = run_campaign(spec, executor=executor)
        assert result.to_json() == ingested_serial_json
        assert executor.stats.get("batched_units", 0) == 0
        assert executor.stats["fallback_units"] == spec.n_units

    def test_pool_byte_identical(self, ingested_serial_json):
        spec = _ingested_spec()
        executor = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            result = run_campaign(spec, executor=executor, chunk_size=3)
        finally:
            executor.close()
        assert result.to_json() == ingested_serial_json
