"""Campaign-layer observability: byte-identity armed, spans, profiles.

The load-bearing contract of the obs PR: arming tracing and profiling
must not move a single bit of any executor's export.  Spans record
timing and metadata only; profile snapshots ride in
``CampaignResult.stats``, which ``to_json()`` never serialises.
"""

import os

import pytest

from repro.campaign import (
    BatchedCampaignExecutor,
    CampaignSpec,
    ProcessPoolCampaignExecutor,
    SerialExecutor,
    run_campaign,
)
from repro.faults import FaultPlan, FaultRule
from repro.obs.events import EventLog
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer

SPEC = CampaignSpec(
    builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
    seeds=(0, 1), gain_codes=(5,),
    measurements=("offset_v", "iq_ma", "gain_1khz_db"),
)


@pytest.fixture(scope="module")
def disarmed_json():
    return run_campaign(SPEC, executor=SerialExecutor()).to_json()


class TestByteIdentityArmed:
    @pytest.mark.parametrize("make_executor", [
        SerialExecutor,
        BatchedCampaignExecutor,
        lambda: ProcessPoolCampaignExecutor(max_workers=2),
    ], ids=["serial", "batched", "pool"])
    def test_armed_export_matches_disarmed(self, make_executor,
                                           disarmed_json):
        executor = make_executor()
        tracer, profiler = Tracer(), Profiler()
        try:
            with tracer.activate(), profiler.activate():
                armed = run_campaign(SPEC, executor=executor)
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
        assert armed.to_json() == disarmed_json
        assert tracer.recorded > 0, "tracing armed but no spans recorded"

    def test_stats_sidecar_never_serialised(self):
        with Profiler().activate():
            result = run_campaign(SPEC, executor=SerialExecutor())
        assert result.stats is not None
        assert "profile" in result.stats
        assert "stats" not in result.to_json()

    def test_disarmed_run_has_no_stats(self):
        result = run_campaign(SPEC, executor=SerialExecutor())
        assert result.stats is None


class TestSpans:
    def test_chunk_spans_nest_under_campaign_run(self):
        tracer = Tracer()
        with tracer.activate():
            run_campaign(SPEC, executor=SerialExecutor())
        spans = tracer.spans()
        run = next(s for s in spans if s["name"] == "campaign.run")
        chunks = [s for s in spans if s["name"] == "campaign.chunk"]
        assert chunks, "no campaign.chunk spans"
        assert all(c["parent_id"] == run["span_id"] for c in chunks)
        assert all(c["trace_id"] == run["trace_id"] for c in chunks)
        assert run["attrs"]["n_units"] == SPEC.n_units

    def test_pool_worker_spans_ship_home_with_parentage(self):
        tracer = Tracer()
        pool = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            with tracer.activate():
                run_campaign(SPEC, executor=pool)
        finally:
            pool.close()
        spans = tracer.spans()
        run = next(s for s in spans if s["name"] == "campaign.run")
        worker = [s for s in spans if s["name"] == "campaign.pool_chunk"]
        assert worker, "worker spans never shipped back"
        assert all(w["trace_id"] == run["trace_id"] for w in worker)
        assert all(w["parent_id"] == run["span_id"] for w in worker)
        assert any(w["pid"] != os.getpid() for w in worker), \
            "expected at least one span recorded in a child process"

    def test_batch_group_spans_recorded(self):
        tracer = Tracer()
        with tracer.activate():
            run_campaign(SPEC, executor=BatchedCampaignExecutor())
        names = [s["name"] for s in tracer.spans()]
        assert "campaign.batch_group" in names


class TestProfile:
    def test_units_run_counter_matches_spec(self):
        profiler = Profiler()
        with profiler.activate():
            run_campaign(SPEC, executor=SerialExecutor())
        counts = profiler.snapshot()["counts"]
        assert counts["campaign.units_run"] == SPEC.n_units
        assert counts["dc.operating_points"] >= SPEC.n_units

    def test_pool_merges_worker_profiles(self):
        profiler = Profiler()
        pool = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            with profiler.activate():
                run_campaign(SPEC, executor=pool)
        finally:
            pool.close()
        counts = profiler.snapshot()["counts"]
        assert counts.get("campaign.units_run") == SPEC.n_units, \
            "worker profile snapshots never merged home"

    def test_result_stats_carries_snapshot(self):
        with Profiler().activate():
            result = run_campaign(SPEC, executor=BatchedCampaignExecutor())
        profile = result.stats["profile"]
        # The batched executor never enters run_unit — its units are
        # stamped and solved as one tensor, under batch.* counters.
        assert profile["counts"]["batch.units_stamped"] == SPEC.n_units
        assert profile["counts"]["campaign.batch_groups"] >= 1


class TestEvents:
    @pytest.mark.parametrize("make_executor", [
        SerialExecutor, BatchedCampaignExecutor,
    ], ids=["serial", "batched"])
    def test_solver_health_sidecar_covers_every_unit(self, make_executor):
        log = EventLog()
        with log.activate():
            result = run_campaign(SPEC, executor=make_executor())
        health = result.stats["solver_health"]
        assert health["n_units"] == SPEC.n_units
        assert sum(health["strategies"].values()) == SPEC.n_units
        assert health["fallback_units"] == 0, \
            "healthy campaign reported solver fallbacks"
        assert result.stats["events"]["recorded"] >= SPEC.n_units

    def test_pool_events_ship_home_with_trace_parentage(self):
        tracer, log = Tracer(), EventLog()
        pool = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            with tracer.activate(), log.activate():
                result = run_campaign(SPEC, executor=pool)
        finally:
            pool.close()
        run = next(s for s in tracer.spans() if s["name"] == "campaign.run")
        health = log.events(name="unit.solver_health")
        assert len(health) == SPEC.n_units, "worker events never shipped back"
        assert all(e["trace_id"] == run["trace_id"] for e in health)
        assert any(e["pid"] != os.getpid() for e in health), \
            "expected at least one event recorded in a child process"
        assert result.stats["solver_health"]["n_units"] == SPEC.n_units

    def test_batch_group_fallback_emits_and_stays_byte_identical(
            self, disarmed_json):
        plan = FaultPlan([FaultRule("campaign.batch_group", times=1)])
        log = EventLog()
        with plan.activate(), log.activate():
            result = run_campaign(SPEC,
                                  executor=BatchedCampaignExecutor())
        assert result.to_json() == disarmed_json
        (fallback,) = log.events(name="campaign.batch_group_fallback")
        assert fallback["severity"] == "warn"
        assert "FaultError" in fallback["fields"]["error"]
        # The units still get health entries via the serial ladder.
        assert result.stats["solver_health"]["n_units"] == SPEC.n_units

    @pytest.mark.parametrize("make_executor", [
        BatchedCampaignExecutor,
        lambda: ProcessPoolCampaignExecutor(max_workers=2),
    ], ids=["batched", "pool"])
    def test_armed_chaos_export_matches_disarmed(self, make_executor,
                                                 disarmed_json):
        """The acceptance bar: trace+profile+events armed, faults
        firing, and the export still byte-identical to a quiet
        disarmed run."""
        rules = [FaultRule("campaign.batch_group", probability=0.5),
                 FaultRule("campaign.pool_chunk", kill=True,
                           when=lambda ctx: ctx["attempt"] == 0, times=1)]
        executor = make_executor()
        tracer, profiler, log = Tracer(), Profiler(), EventLog()
        plan = FaultPlan(rules, seed=7)
        try:
            with plan.activate(), tracer.activate(), profiler.activate(), \
                    log.activate():
                armed = run_campaign(SPEC, executor=executor)
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
        assert armed.to_json() == disarmed_json
