"""Campaign-layer observability: byte-identity armed, spans, profiles.

The load-bearing contract of the obs PR: arming tracing and profiling
must not move a single bit of any executor's export.  Spans record
timing and metadata only; profile snapshots ride in
``CampaignResult.stats``, which ``to_json()`` never serialises.
"""

import os

import pytest

from repro.campaign import (
    BatchedCampaignExecutor,
    CampaignSpec,
    ProcessPoolCampaignExecutor,
    SerialExecutor,
    run_campaign,
)
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer

SPEC = CampaignSpec(
    builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
    seeds=(0, 1), gain_codes=(5,),
    measurements=("offset_v", "iq_ma", "gain_1khz_db"),
)


@pytest.fixture(scope="module")
def disarmed_json():
    return run_campaign(SPEC, executor=SerialExecutor()).to_json()


class TestByteIdentityArmed:
    @pytest.mark.parametrize("make_executor", [
        SerialExecutor,
        BatchedCampaignExecutor,
        lambda: ProcessPoolCampaignExecutor(max_workers=2),
    ], ids=["serial", "batched", "pool"])
    def test_armed_export_matches_disarmed(self, make_executor,
                                           disarmed_json):
        executor = make_executor()
        tracer, profiler = Tracer(), Profiler()
        try:
            with tracer.activate(), profiler.activate():
                armed = run_campaign(SPEC, executor=executor)
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
        assert armed.to_json() == disarmed_json
        assert tracer.recorded > 0, "tracing armed but no spans recorded"

    def test_stats_sidecar_never_serialised(self):
        with Profiler().activate():
            result = run_campaign(SPEC, executor=SerialExecutor())
        assert result.stats is not None
        assert "profile" in result.stats
        assert "stats" not in result.to_json()

    def test_disarmed_run_has_no_stats(self):
        result = run_campaign(SPEC, executor=SerialExecutor())
        assert result.stats is None


class TestSpans:
    def test_chunk_spans_nest_under_campaign_run(self):
        tracer = Tracer()
        with tracer.activate():
            run_campaign(SPEC, executor=SerialExecutor())
        spans = tracer.spans()
        run = next(s for s in spans if s["name"] == "campaign.run")
        chunks = [s for s in spans if s["name"] == "campaign.chunk"]
        assert chunks, "no campaign.chunk spans"
        assert all(c["parent_id"] == run["span_id"] for c in chunks)
        assert all(c["trace_id"] == run["trace_id"] for c in chunks)
        assert run["attrs"]["n_units"] == SPEC.n_units

    def test_pool_worker_spans_ship_home_with_parentage(self):
        tracer = Tracer()
        pool = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            with tracer.activate():
                run_campaign(SPEC, executor=pool)
        finally:
            pool.close()
        spans = tracer.spans()
        run = next(s for s in spans if s["name"] == "campaign.run")
        worker = [s for s in spans if s["name"] == "campaign.pool_chunk"]
        assert worker, "worker spans never shipped back"
        assert all(w["trace_id"] == run["trace_id"] for w in worker)
        assert all(w["parent_id"] == run["span_id"] for w in worker)
        assert any(w["pid"] != os.getpid() for w in worker), \
            "expected at least one span recorded in a child process"

    def test_batch_group_spans_recorded(self):
        tracer = Tracer()
        with tracer.activate():
            run_campaign(SPEC, executor=BatchedCampaignExecutor())
        names = [s["name"] for s in tracer.spans()]
        assert "campaign.batch_group" in names


class TestProfile:
    def test_units_run_counter_matches_spec(self):
        profiler = Profiler()
        with profiler.activate():
            run_campaign(SPEC, executor=SerialExecutor())
        counts = profiler.snapshot()["counts"]
        assert counts["campaign.units_run"] == SPEC.n_units
        assert counts["dc.operating_points"] >= SPEC.n_units

    def test_pool_merges_worker_profiles(self):
        profiler = Profiler()
        pool = ProcessPoolCampaignExecutor(max_workers=2)
        try:
            with profiler.activate():
                run_campaign(SPEC, executor=pool)
        finally:
            pool.close()
        counts = profiler.snapshot()["counts"]
        assert counts.get("campaign.units_run") == SPEC.n_units, \
            "worker profile snapshots never merged home"

    def test_result_stats_carries_snapshot(self):
        with Profiler().activate():
            result = run_campaign(SPEC, executor=BatchedCampaignExecutor())
        profile = result.stats["profile"]
        # The batched executor never enters run_unit — its units are
        # stamped and solved as one tensor, under batch.* counters.
        assert profile["counts"]["batch.units_stamped"] == SPEC.n_units
        assert profile["counts"]["campaign.batch_groups"] >= 1
