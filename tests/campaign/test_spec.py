"""Campaign spec expansion, validation and seed derivation."""

import pickle

import numpy as np
import pytest

from repro.campaign import CampaignSpec, WorkUnit, mc_seeds


class TestExpansion:
    def test_cross_product_size(self):
        spec = CampaignSpec(corners=("tt", "ff"), temps_c=(25.0, 85.0),
                            supplies=(None, 3.0), seeds=(None, 1),
                            gain_codes=(None,))
        assert spec.n_units == 2 * 2 * 2 * 2
        units = spec.expand()
        assert len(units) == spec.n_units
        assert [u.index for u in units] == list(range(spec.n_units))

    def test_temperature_innermost(self):
        """Temps vary fastest so one built circuit serves adjacent units."""
        spec = CampaignSpec(corners=("tt", "ff"), temps_c=(-20.0, 25.0, 85.0))
        units = spec.expand()
        assert [u.temp_c for u in units[:3]] == [-20.0, 25.0, 85.0]
        assert all(u.corner == "tt" for u in units[:3])
        assert all(u.corner == "ff" for u in units[3:])

    def test_circuit_key_excludes_temperature(self):
        u1 = WorkUnit(0, "tt", -20.0, None, 3, 5)
        u2 = WorkUnit(1, "tt", 85.0, None, 3, 5)
        assert u1.circuit_key() == u2.circuit_key()

    def test_chunked_preserves_order(self):
        spec = CampaignSpec(corners=("tt",), temps_c=(25.0,),
                            seeds=tuple(range(7)))
        chunks = spec.chunked(3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        flat = [u.index for c in chunks for u in c]
        assert flat == list(range(7))

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            CampaignSpec(corners=("tt",)).chunked(0)


class TestValidation:
    def test_corners_canonicalised_lowercase(self):
        spec = CampaignSpec(corners=["TT", "FF"])
        assert spec.corners == ("tt", "ff")

    def test_unknown_corner_rejected(self):
        with pytest.raises(KeyError, match="unknown corners"):
            CampaignSpec(corners=("tt", "tturbo"))

    def test_unknown_builder_rejected(self):
        with pytest.raises(KeyError, match="unknown builder"):
            CampaignSpec(builder="flux_capacitor")

    def test_unknown_measurement_rejected(self):
        with pytest.raises(KeyError, match="unknown measurements"):
            CampaignSpec(measurements=("offset_v", "vibes"))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            CampaignSpec(temps_c=())

    def test_bare_string_axis_rejected(self):
        with pytest.raises(TypeError, match="bare string"):
            CampaignSpec(corners="tt")

    def test_spec_pickles(self):
        spec = CampaignSpec(corners=("tt",), seeds=(1, 2))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestBuilderKwargs:
    def test_canonicalised_to_sorted_float_pairs(self):
        spec = CampaignSpec(builder_kwargs={"r_total": 30e3, "i_pair": 1e-3})
        assert spec.builder_kwargs == (("i_pair", 1e-3), ("r_total", 30000.0))
        # pair-sequence input lands on the same canonical form (hash/pickle)
        assert spec == CampaignSpec(
            builder_kwargs=(("r_total", 30000.0), ("i_pair", 1e-3)))

    def test_kwargs_spec_pickles(self):
        spec = CampaignSpec(builder="micamp_sized",
                            builder_kwargs={"l_load": 20e-6})
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_sized_builder_receives_kwargs(self):
        from repro.campaign import run_campaign

        base = dict(corners=("tt",), temps_c=(25.0,), gain_codes=(5,),
                    measurements=("iq_ma",))
        lo = run_campaign(CampaignSpec(
            builder="micamp_sized", builder_kwargs={"i_pair": 0.4e-3}, **base))
        hi = run_campaign(CampaignSpec(
            builder="micamp_sized", builder_kwargs={"i_pair": 1.2e-3}, **base))
        assert lo.metric("iq_ma")[0] < hi.metric("iq_ma")[0]

    def test_plain_builders_reject_kwargs(self):
        from repro.campaign import run_campaign

        spec = CampaignSpec(builder="micamp", corners=("tt",), temps_c=(25.0,),
                            measurements=("iq_ma",),
                            builder_kwargs={"i_pair": 1e-3})
        with pytest.raises(TypeError):
            run_campaign(spec)

    def test_sized_builder_rejects_unknown_parameter(self):
        from repro.campaign import run_campaign

        spec = CampaignSpec(builder="micamp_sized", corners=("tt",),
                            temps_c=(25.0,), measurements=("iq_ma",),
                            builder_kwargs={"w_banana": 1.0})
        with pytest.raises(ValueError, match="unknown sizing parameters"):
            run_campaign(spec)


class TestMcSeeds:
    def test_deterministic(self):
        assert mc_seeds(5, 2026) == mc_seeds(5, 2026)
        assert mc_seeds(5, 2026) != mc_seeds(5, 99)

    def test_matches_legacy_derivation(self):
        """Same master-rng child-seed scheme the old MC loops used."""
        rng = np.random.default_rng(2026)
        expected = tuple(int(rng.integers(2 ** 63)) for _ in range(4))
        assert mc_seeds(4, 2026) == expected
