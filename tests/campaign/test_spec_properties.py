"""Property tests: spec expansion, fingerprints and store keys are
scheduling-invariant.

Seeded random specs drive three properties the store and the executors
both rely on:

* permuting the *contents* of an axis permutes unit order but never
  invents, drops or re-keys a unit — the (coords -> store key) mapping
  is a pure function of the coordinates;
* chunk size is a pure scheduling knob: any chunking concatenates back
  to the exact expansion, and executors produce byte-identical exports
  for any chunk size;
* unit index is positional only — it never leaks into circuit identity
  (``circuit_key``) or store keys, which is what makes incremental
  campaigns and axis-extended reruns cache-compatible.
"""

import random

import pytest

from repro.campaign import (
    BatchedCampaignExecutor,
    CampaignSpec,
    SerialExecutor,
    run_campaign,
)
from repro.store.keys import UnitKeyer, campaign_key

AXES = ("corners", "temps_c", "supplies", "seeds", "gain_codes")


def _random_spec(rng: random.Random) -> CampaignSpec:
    corners = rng.sample(("tt", "ff", "ss", "fs", "sf"), rng.randint(1, 3))
    temps = rng.sample((-20.0, 0.0, 25.0, 55.0, 85.0), rng.randint(1, 3))
    supplies = rng.sample((None, 2.7, 3.0, 3.3), rng.randint(1, 2))
    seeds = rng.sample(range(100), rng.randint(1, 3))
    codes = rng.sample(range(8), rng.randint(1, 2))
    return CampaignSpec(
        builder="micamp", corners=tuple(corners), temps_c=tuple(temps),
        supplies=tuple(supplies), seeds=tuple(seeds),
        gain_codes=tuple(codes),
        measurements=("offset_v", "iq_ma"),
    )


def _coords(unit) -> tuple:
    return (unit.corner, unit.temp_c, unit.supply, unit.seed, unit.gain_code)


def _permuted(spec: CampaignSpec, rng: random.Random) -> CampaignSpec:
    def shuffled(values):
        values = list(values)
        rng.shuffle(values)
        return tuple(values)

    return CampaignSpec(
        builder=spec.builder,
        corners=shuffled(spec.corners), temps_c=shuffled(spec.temps_c),
        supplies=shuffled(spec.supplies), seeds=shuffled(spec.seeds),
        gain_codes=shuffled(spec.gain_codes),
        measurements=spec.measurements,
    )


class TestAxisPermutation:
    @pytest.mark.parametrize("trial", range(8))
    def test_permutation_preserves_unit_set_and_store_keys(self, trial):
        rng = random.Random(1000 + trial)
        spec = _random_spec(rng)
        perm = _permuted(spec, rng)

        base_keys = {_coords(u): UnitKeyer(spec).key(u) for u in spec.expand()}
        perm_keys = {_coords(u): UnitKeyer(perm).key(u) for u in perm.expand()}
        # Same unit set, and every coordinate tuple maps to the same
        # store key — the index (which did change) is not part of it.
        assert base_keys == perm_keys

    @pytest.mark.parametrize("trial", range(8))
    def test_permutation_preserves_circuit_keys_and_indexing(self, trial):
        rng = random.Random(2000 + trial)
        spec = _random_spec(rng)
        perm = _permuted(spec, rng)

        for s in (spec, perm):
            units = s.expand()
            assert [u.index for u in units] == list(range(s.n_units))
            assert len({_coords(u) for u in units}) == s.n_units
        assert ({u.circuit_key() for u in spec.expand()}
                == {u.circuit_key() for u in perm.expand()})

    def test_identical_axes_identical_campaign_key(self):
        rng = random.Random(7)
        spec = _random_spec(rng)
        clone = CampaignSpec(
            builder=spec.builder, corners=spec.corners, temps_c=spec.temps_c,
            supplies=spec.supplies, seeds=spec.seeds,
            gain_codes=spec.gain_codes, measurements=spec.measurements,
        )
        assert campaign_key(spec) == campaign_key(clone)
        perm = _permuted(spec, random.Random(8))
        if tuple(perm.corners) != tuple(spec.corners) or \
                tuple(perm.temps_c) != tuple(spec.temps_c):
            # Axis order is part of whole-campaign identity (it changes
            # row order), even though per-unit keys are order-free.
            assert campaign_key(perm) != campaign_key(spec)


class TestChunkingProperties:
    @pytest.mark.parametrize("trial", range(6))
    def test_chunks_concatenate_to_expansion(self, trial):
        rng = random.Random(3000 + trial)
        spec = _random_spec(rng)
        units = spec.expand()
        for chunk_size in sorted({1, 2, 3, rng.randint(1, spec.n_units),
                                  spec.n_units}):
            chunks = spec.chunked(chunk_size)
            flat = [u for chunk in chunks for u in chunk]
            assert flat == units
            assert all(len(c) <= chunk_size for c in chunks)

    def test_chunk_size_never_changes_exported_bytes(self):
        spec = CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0, 85.0),
            seeds=(0, 1), gain_codes=(5,),
            measurements=("offset_v", "iq_ma"),
        )
        reference = run_campaign(spec, executor=SerialExecutor()).to_json()
        for chunk_size in (1, 3, 5, spec.n_units):
            for executor in (SerialExecutor(), BatchedCampaignExecutor()):
                got = run_campaign(spec, executor=executor,
                                   chunk_size=chunk_size).to_json()
                assert got == reference, (
                    f"{executor.name} with chunk_size={chunk_size} "
                    "changed exported bytes"
                )
