"""Golden pin of the Table-1 qualification campaign's reduced results.

The 60-unit PVT x mismatch campaign (5 corners x 3 temperatures x 4
seeds at the 40 dB code) is the repo's reference workload — the bench
times it, the batched executor accelerates it, the README quotes it.
This file pins its *reductions* (sigma, worst-case, percentiles, yield)
to exact ``repr`` floats: any engine change that moves a bit anywhere in
build, solve or measure shows up here as a diff against a reviewable
JSON file, not as a silent drift.

Regenerate deliberately with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/campaign/test_golden.py

and audit the diff before committing it.
"""

import json
import os
import pathlib

import pytest

from repro.campaign import CampaignSpec, SerialExecutor, run_campaign

GOLDEN = pathlib.Path(__file__).parent / "golden" / "qualification_reduced.json"

SPEC = CampaignSpec(
    builder="micamp", corners=("tt", "ff", "ss", "fs", "sf"),
    temps_c=(-20.0, 25.0, 85.0), seeds=(0, 1, 2, 3), gain_codes=(5,),
    measurements=("offset_v", "iq_ma", "gain_1khz_db",
                  "psrr_1khz_db", "cmrr_1khz_db"),
)


def _reduced(result) -> dict:
    """Every reducer the result API offers, on spec-relevant metrics,
    with dict keys flattened to JSON-stable strings."""

    def flat(d: dict) -> dict:
        return {"|".join(str(k) for k in key): value
                for key, value in sorted(d.items(), key=lambda kv: str(kv[0]))}

    return {
        "n_units": len(result),
        "sigma_offset_by_corner": flat(result.sigma_by("offset_v", by=("corner",))),
        "sigma_gain_error_by_code": flat(result.sigma_by("gain_error_db")),
        "worst_psrr_by_corner": flat(result.worst_by("psrr_1khz_db",
                                                     by=("corner",), sense="min")),
        "worst_offset_by_temp": flat(result.worst_by("offset_v",
                                                     by=("temp_c",), sense="absmax")),
        "offset_percentiles": list(result.percentile("offset_v", (1.0, 50.0, 99.0))),
        "iq_p95_ma": float(result.percentile("iq_ma", 95.0)),
        "yield_psrr_ge_60db": result.yield_fraction("psrr_1khz_db", lo=60.0),
        "yield_offset_5mv": result.yield_fraction("offset_v", lo=-5e-3, hi=5e-3),
    }


@pytest.fixture(scope="module")
def reduced():
    return _reduced(run_campaign(SPEC, executor=SerialExecutor()))


def test_reduced_results_match_golden(reduced):
    payload = json.dumps(reduced, indent=2, sort_keys=True) + "\n"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(payload)
        pytest.skip(f"regenerated {GOLDEN}")
    assert GOLDEN.exists(), (
        f"golden file missing; regenerate with REPRO_REGEN_GOLDEN=1 ({GOLDEN})"
    )
    golden = json.loads(GOLDEN.read_text())
    current = json.loads(payload)
    assert current == golden, (
        "qualification campaign reductions drifted from the golden pin; "
        "if the change is intentional, regenerate with REPRO_REGEN_GOLDEN=1 "
        "and review the diff"
    )


def test_golden_covers_every_reducer(reduced):
    """The pin must keep exercising all four reducer families."""
    keys = set(reduced)
    assert any(k.startswith("sigma_") for k in keys)
    assert any(k.startswith("worst_") for k in keys)
    assert any("percentile" in k for k in keys)
    assert any(k.startswith("yield_") for k in keys)
