"""Reducers and export on a synthetic campaign result (no circuits)."""

import numpy as np
import pytest

from repro.campaign import CampaignResult, CampaignSpec, WorkUnit


def synthetic_result():
    """2 corners x 2 codes x 2 seeds with hand-computable metrics."""
    units, records = [], []
    index = 0
    for corner in ("tt", "ss"):
        for code in (0, 5):
            for seed in (0, 1):
                units.append(WorkUnit(index=index, corner=corner, temp_c=25.0,
                                      supply=None, seed=seed, gain_code=code))
                # gain error: +/-0.01 around a per-code mean; psrr differs
                # by corner so worst_by has something to find
                records.append({
                    "gain_error_db": (0.02 if code else 0.04) * (1 if seed else -1),
                    "psrr_db": 100.0 - 10.0 * (corner == "ss") - seed,
                })
                index += 1
    spec = CampaignSpec(corners=("tt", "ss"), temps_c=(25.0,),
                        gain_codes=(0, 5), seeds=(0, 1))
    return CampaignResult.from_units(spec, units, records)


class TestColumns:
    def test_metric_and_column_access(self):
        r = synthetic_result()
        assert len(r) == 8
        assert r.metrics == ("gain_error_db", "psrr_db")
        assert r.metric("psrr_db").dtype == np.float64
        with pytest.raises(KeyError, match="unknown metric"):
            r.metric("corner")          # axis, not a metric
        assert r.column("corner")[0] == "tt"
        with pytest.raises(KeyError, match="unknown column"):
            r.column("nope")

    def test_missing_metric_padded_with_nan(self):
        spec = CampaignSpec(corners=("tt",), temps_c=(25.0,), seeds=(0, 1))
        units = spec.expand()
        records = [{"a": 1.0, "b": 2.0}, {"a": 3.0}]
        r = CampaignResult.from_units(spec, units, records)
        assert np.isnan(r.metric("b")[1])


class TestReducers:
    def test_sigma_by_code(self):
        r = synthetic_result()
        sigma = r.sigma_by("gain_error_db", by=("gain_code",))
        assert sigma[(0,)] == pytest.approx(0.04)
        assert sigma[(5,)] == pytest.approx(0.02)

    def test_worst_by_corner_min(self):
        r = synthetic_result()
        worst = r.worst_by("psrr_db", by=("corner",), sense="min")
        assert worst[("tt",)] == pytest.approx(99.0)
        assert worst[("ss",)] == pytest.approx(89.0)

    def test_worst_by_absmax(self):
        r = synthetic_result()
        worst = r.worst_by("gain_error_db", by=("gain_code",), sense="absmax")
        assert worst[(0,)] == pytest.approx(0.04)

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError, match="sense"):
            synthetic_result().worst_by("psrr_db", sense="sideways")

    def test_group_by_multiple_axes(self):
        r = synthetic_result()
        means = r.group_reduce("psrr_db", by=("corner", "seed"), fn=np.mean)
        assert len(means) == 4
        assert means[("tt", 0)] == pytest.approx(100.0)

    def test_percentile_and_yield(self):
        r = synthetic_result()
        assert r.percentile("psrr_db", 50) == pytest.approx(94.5)
        assert r.yield_fraction("psrr_db", lo=90.0) == pytest.approx(0.75)
        assert r.yield_fraction("psrr_db", lo=0.0, hi=200.0) == 1.0
        with pytest.raises(ValueError, match="lo / hi"):
            r.yield_fraction("psrr_db")


class TestExport:
    def test_csv(self, tmp_path):
        r = synthetic_result()
        path = tmp_path / "campaign.csv"
        r.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",") == list(r.columns)
        assert len(lines) == 1 + len(r)

    def test_json_roundtrip(self, tmp_path):
        r = synthetic_result()
        path = tmp_path / "campaign.json"
        r.to_json(path)
        back = CampaignResult.from_json(path)
        assert back.metrics == r.metrics
        for name in r.columns:
            if name == "corner":
                assert list(back.column(name)) == list(r.column(name))
            else:
                np.testing.assert_allclose(
                    np.asarray(back.column(name), dtype=float),
                    np.asarray(r.column(name), dtype=float),
                )

    def test_summary_and_table(self):
        r = synthetic_result()
        text = r.summary()
        assert "8 units" in text and "psrr_db" in text
        table = r.format_table(max_rows=3)
        assert "more rows" in table


class TestNonFiniteJson:
    """Regression: failed units emit NaN/±inf metrics; the export must
    stay strict JSON and re-serialise byte-identically."""

    def non_finite_result(self):
        spec = CampaignSpec(corners=("tt", "ss"), temps_c=(25.0,))
        units = spec.expand()
        records = [{"m": float("nan"), "p": float("inf")},
                   {"m": float("-inf"), "p": 1.25}]
        return CampaignResult.from_units(spec, units, records)

    def test_output_is_strict_json(self):
        import json

        text = self.non_finite_result().to_json()
        # strict parsers reject NaN/Infinity literals; tokens must be used
        json.loads(text, parse_constant=lambda s: pytest.fail(
            f"non-strict constant {s} in to_json output"))
        assert '"Infinity"' in text and '"-Infinity"' in text

    def test_roundtrip_restores_values(self):
        r = self.non_finite_result()
        back = CampaignResult.from_json(r.to_json())
        assert np.isnan(back.metric("m")[0])
        assert back.metric("m")[1] == -np.inf
        assert back.metric("p")[0] == np.inf
        assert back.metric("p")[1] == 1.25
        assert list(back.column("corner")) == ["tt", "ss"]

    def test_reserialization_byte_identical(self, tmp_path):
        r = self.non_finite_result()
        path = tmp_path / "nf.json"
        r.to_json(path)
        text = path.read_text()
        again = tmp_path / "nf2.json"
        CampaignResult.from_json(path).to_json(again)
        assert again.read_bytes() == path.read_bytes()
        assert CampaignResult.from_json(text).to_json() + "\n" == text
