"""Campaign execution: determinism across executors, legacy equivalence.

The determinism contract is the load-bearing one: the same spec + seeds
must produce the same ``CampaignResult`` from the serial and the
process-pool executor (the spec requires rtol 1e-12; the implementation
is in fact byte-identical because every unit is a cold self-contained
computation).
"""

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ProcessPoolCampaignExecutor,
    SerialExecutor,
    run_campaign,
)


@pytest.fixture(scope="module")
def micamp_spec():
    return CampaignSpec(
        builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
        seeds=(0, 1), gain_codes=(5,),
        measurements=("offset_v", "iq_ma", "gain_1khz_db", "psrr_1khz_db"),
    )


@pytest.fixture(scope="module")
def serial_result(micamp_spec):
    return run_campaign(micamp_spec, executor=SerialExecutor())


class TestDeterminism:
    def test_parallel_equals_serial(self, micamp_spec, serial_result):
        parallel = run_campaign(
            micamp_spec,
            executor=ProcessPoolCampaignExecutor(max_workers=2),
            chunk_size=1,
        )
        assert parallel.metrics == serial_result.metrics
        for metric in serial_result.metrics:
            np.testing.assert_allclose(
                parallel.metric(metric), serial_result.metric(metric),
                rtol=1e-12,
            )

    def test_chunking_does_not_change_values(self, micamp_spec, serial_result):
        rechunked = run_campaign(micamp_spec, chunk_size=1)
        for metric in serial_result.metrics:
            np.testing.assert_array_equal(
                rechunked.metric(metric), serial_result.metric(metric)
            )

    def test_rerun_is_reproducible(self, micamp_spec, serial_result):
        again = run_campaign(micamp_spec)
        for metric in serial_result.metrics:
            np.testing.assert_array_equal(
                again.metric(metric), serial_result.metric(metric)
            )


class TestLegacyEquivalence:
    def test_matches_hand_rolled_loop(self, serial_result):
        """Campaign rows reproduce the pre-campaign rebuild idiom exactly."""
        from repro.analysis.psrr import measure_psrr
        from repro.circuits.micamp import build_mic_amp
        from repro.process import CMOS12, MismatchSampler, apply_corner
        from repro.spice.dc import dc_operating_point

        tech = apply_corner(CMOS12, "ss")
        sampler = MismatchSampler(tech, np.random.default_rng(1))
        design = build_mic_amp(tech, gain_code=5, mismatch=sampler)
        op = dc_operating_point(design.circuit)
        row = serial_result.data[
            (serial_result.data["corner"] == "ss")
            & (serial_result.data["seed"] == 1)
        ]
        assert row.shape[0] == 1
        assert row["offset_v"][0] == op.vdiff(design.outp, design.outn)
        psrr = measure_psrr(design.circuit, "vdd_src", ("vin_p", "vin_n"),
                            design.outp, design.outn).ratio_db
        assert row["psrr_1khz_db"][0] == psrr

    def test_axis_columns_recorded(self, micamp_spec, serial_result):
        assert len(serial_result) == micamp_spec.n_units
        assert set(serial_result.column("corner")) == {"tt", "ss"}
        assert set(serial_result.column("seed")) == {0, 1}
        # nominal supply encodes as nan
        assert np.isnan(serial_result.column("supply")).all()


class TestOtherBuilders:
    def test_bias_campaign(self):
        spec = CampaignSpec(builder="bias", corners=("tt", "ff"),
                            temps_c=(25.0,), measurements=("bias_current_ua",))
        result = run_campaign(spec)
        current = result.metric("bias_current_ua")
        assert current.shape == (2,)
        # the Fig. 2 generator targets ~20 uA at nominal conditions
        assert np.all((current > 10.0) & (current < 30.0))

    def test_bandgap_campaign(self):
        spec = CampaignSpec(builder="bandgap", corners=("tt",),
                            temps_c=(25.0,), measurements=("vref_mv",))
        result = run_campaign(spec)
        assert 1000.0 < result.metric("vref_mv")[0] < 1400.0

    def test_gain_code_axis(self):
        spec = CampaignSpec(builder="micamp", corners=("tt",), temps_c=(25.0,),
                            gain_codes=(0, 5), measurements=("gain_1khz_db",))
        result = run_campaign(spec)
        gains = dict(zip(result.column("gain_code"), result.metric("gain_1khz_db")))
        assert gains[5] - gains[0] == pytest.approx(30.0, abs=0.5)

    def test_powerbuffer_rejects_gain_codes(self):
        spec = CampaignSpec(builder="powerbuffer", corners=("tt",),
                            temps_c=(25.0,), gain_codes=(3,),
                            measurements=("iq_ma",))
        with pytest.raises(ValueError, match="no gain codes"):
            run_campaign(spec)


class TestResultAssembly:
    def test_record_count_mismatch_rejected(self):
        from repro.campaign.result import CampaignResult

        spec = CampaignSpec(corners=("tt",), temps_c=(25.0,))
        with pytest.raises(ValueError, match="dropped or duplicated"):
            CampaignResult.from_units(spec, spec.expand(), [])
