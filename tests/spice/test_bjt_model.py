"""Bipolar model: Ebers-Moll behaviour, tempco, derivative consistency."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.process.technology import VPNP_12
from repro.spice.devices.bjt import BjtGroup, BjtModel, NPN


NPN_TEST = BjtModel(name="npn_test", polarity=NPN, is_sat=1e-16, beta_f=100.0)


def evaluate_single(model, vc, vb, ve, temp_c=25.0, area=1.0):
    grp = BjtGroup(
        names=["q"],
        c=np.array([0]), b=np.array([1]), e=np.array([2]),
        area=np.array([area]), models=[model], temp_c=temp_c,
    )
    return grp, grp.evaluate(np.array([vc, vb, ve, 0.0]))


class TestForwardActive:
    def test_collector_current_exponential(self):
        _, ev1 = evaluate_single(NPN_TEST, 2.0, 0.65, 0.0)
        _, ev2 = evaluate_single(NPN_TEST, 2.0, 0.65 + 0.05961, 0.0)
        # 60 mV per decade at room temperature
        assert ev2.ic[0] / ev1.ic[0] == pytest.approx(10.0, rel=0.05)

    def test_beta_relation(self):
        _, ev = evaluate_single(NPN_TEST, 2.0, 0.65, 0.0)
        assert ev.ic[0] / ev.ib[0] == pytest.approx(100.0, rel=0.05)

    def test_area_scales_current(self):
        _, ev1 = evaluate_single(NPN_TEST, 2.0, 0.65, 0.0, area=1.0)
        _, ev8 = evaluate_single(NPN_TEST, 2.0, 0.65, 0.0, area=8.0)
        assert ev8.ic[0] / ev1.ic[0] == pytest.approx(8.0, rel=1e-6)

    def test_early_effect_increases_ic(self):
        _, lo = evaluate_single(NPN_TEST, 1.0, 0.65, 0.0)
        _, hi = evaluate_single(NPN_TEST, 3.0, 0.65, 0.0)
        assert hi.ic[0] > lo.ic[0]
        assert hi.ic[0] / lo.ic[0] == pytest.approx(
            (1 + 3.0 / NPN_TEST.vaf) / (1 + 1.0 / NPN_TEST.vaf), rel=0.02
        )

    def test_pnp_polarity(self):
        """Vertical PNP with emitter above base conducts into the emitter."""
        _, ev = evaluate_single(VPNP_12, 0.0, 0.0, 0.75)
        # ic is current INTO the collector: for a PNP it flows out => negative
        assert ev.ic[0] < 0.0
        assert ev.vbe[0] == pytest.approx(0.75)


class TestVbeTemperature:
    def test_vbe_tempco_is_about_minus_1_5_to_2_mv_per_k(self):
        """The CTAT slope the bandgap cancels."""

        def vbe_at(temp_c, ic_target=20e-6):
            # invert Ic(vbe) ~ IS*exp(vbe/UT)
            grp, _ = evaluate_single(VPNP_12, 0.0, 0.0, 0.7, temp_c=temp_c)
            from repro.constants import thermal_voltage

            ut = thermal_voltage(temp_c)
            return ut * np.log(ic_target / VPNP_12.is_at(temp_c))

        slope = (vbe_at(35.0) - vbe_at(15.0)) / 20.0
        assert -2.2e-3 < slope < -1.3e-3

    def test_is_increases_steeply_with_temperature(self):
        assert VPNP_12.is_at(85.0) / VPNP_12.is_at(25.0) > 100.0


class TestDerivatives:
    @given(st.floats(min_value=0.45, max_value=0.8))
    @settings(max_examples=25, deadline=None)
    def test_gm_matches_numeric(self, vbe):
        h = 1e-7
        _, ev = evaluate_single(NPN_TEST, 2.0, vbe, 0.0)
        _, hi = evaluate_single(NPN_TEST, 2.0, vbe + h, 0.0)
        _, lo = evaluate_single(NPN_TEST, 2.0, vbe - h, 0.0)
        numeric = (hi.ic[0] - lo.ic[0]) / (2 * h)
        assert ev.gm[0] == pytest.approx(numeric, rel=2e-3, abs=1e-12)

    @given(st.floats(min_value=0.45, max_value=0.8))
    @settings(max_examples=25, deadline=None)
    def test_gpi_matches_numeric(self, vbe):
        h = 1e-7
        _, ev = evaluate_single(NPN_TEST, 2.0, vbe, 0.0)
        _, hi = evaluate_single(NPN_TEST, 2.0, vbe + h, 0.0)
        _, lo = evaluate_single(NPN_TEST, 2.0, vbe - h, 0.0)
        numeric = (hi.ib[0] - lo.ib[0]) / (2 * h)
        assert ev.gpi[0] == pytest.approx(numeric, rel=2e-3, abs=1e-14)

    def test_limited_exp_keeps_currents_finite(self):
        _, ev = evaluate_single(NPN_TEST, 2.0, 5.0, 0.0)
        assert np.isfinite(ev.ic[0])
        assert np.isfinite(ev.gm[0])


class TestNoise:
    def test_shot_noise_tracks_currents(self):
        grp, ev = evaluate_single(NPN_TEST, 2.0, 0.65, 0.0)
        sic, sib = grp.shot_noise_psd(ev)
        from repro.constants import ELEMENTARY_CHARGE

        assert sic[0] == pytest.approx(2 * ELEMENTARY_CHARGE * abs(ev.ic[0]), rel=1e-9)
        assert sib[0] == pytest.approx(2 * ELEMENTARY_CHARGE * abs(ev.ib[0]), rel=1e-9)

    def test_flicker_inverse_frequency(self):
        grp, ev = evaluate_single(VPNP_12, 0.0, 0.0, 0.75)
        assert grp.flicker_noise_psd(ev, 10.0)[0] == pytest.approx(
            10.0 * grp.flicker_noise_psd(ev, 100.0)[0], rel=1e-9
        )


class TestValidation:
    def test_polarity_validated(self):
        with pytest.raises(ValueError, match="polarity"):
            BjtModel(polarity="npn2")

    def test_positive_parameters_required(self):
        with pytest.raises(ValueError):
            BjtModel(is_sat=-1e-16)
