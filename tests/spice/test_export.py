"""SPICE-deck export."""

import pathlib

import pytest

from repro.spice import Circuit, Pulse, Sine
from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.devices.mosfet import MosModel
from repro.spice.export import _fmt, export_netlist, write_netlist

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.fixture
def small_circuit(tech):
    ckt = Circuit("demo")
    ckt.vsource("vdd", "vdd", "gnd", dc=2.6, ac=1.0)
    ckt.vsource("vin", "in", "gnd", dc=0.9,
                wave=Sine(offset=0.9, amplitude=0.1, freq=1e3))
    ckt.resistor("rl", "vdd", "out", 10e3, tc1=8e-4)
    ckt.capacitor("cl", "out", "gnd", 1e-12)
    ckt.mosfet("m1", "out", "in", "gnd", "gnd", tech.nmos, 50e-6, 2e-6)
    ckt.bjt("q1", "gnd", "gnd", "e1", tech.vpnp)
    ckt.isource("ib", "e1", "gnd", dc=-20e-6)
    ckt.switch("s1", "out", "tap", closed=True, ron=100.0)
    ckt.resistor("rtap", "tap", "gnd", 1e3)
    return ckt


class TestExport:
    def test_contains_every_element(self, small_circuit):
        deck = export_netlist(small_circuit)
        for prefix in ("Vvdd", "Vvin", "Rrl", "Ccl", "Mm1", "Qq1", "Iib", "Rs1"):
            assert prefix in deck, f"{prefix} missing from deck"

    def test_ground_is_node_zero(self, small_circuit):
        deck = export_netlist(small_circuit)
        assert "Vvdd vdd 0 DC 2.6 AC 1 0" in deck

    def test_model_cards_emitted_once(self, small_circuit, tech):
        deck = export_netlist(small_circuit)
        assert deck.count(f".model {tech.nmos.name} NMOS") == 1
        assert deck.count(f".model {tech.vpnp.name} PNP") == 1

    def test_sine_wave_rendered(self, small_circuit):
        deck = export_netlist(small_circuit)
        assert "SIN(0.9 0.1 1000" in deck

    def test_pulse_and_pwl(self, tech):
        ckt = Circuit("w")
        ckt.vsource("v1", "a", "gnd",
                    wave=Pulse(v1=0, v2=1, delay=1e-6, rise=1e-9,
                               fall=1e-9, width=1e-3, period=2e-3))
        ckt.resistor("r1", "a", "gnd", 1.0)
        deck = export_netlist(ckt)
        assert "PULSE(0 1 1e-06" in deck

    def test_ends_with_end_card(self, small_circuit):
        assert export_netlist(small_circuit).rstrip().endswith(".end")

    def test_write_netlist(self, small_circuit, tmp_path):
        path = tmp_path / "demo.cir"
        write_netlist(small_circuit, str(path))
        assert path.read_text().startswith("* demo")

    def test_resistor_tempco_exported(self, small_circuit):
        deck = export_netlist(small_circuit)
        assert "TC=0.0008,0" in deck

    def test_fmt_round_trips_awkward_values(self):
        for v in (0.0, -0.0, 0.5e-15, 2.4999999999e-15, 1e-18, 1.0 / 3.0,
                  -7.2345678912e-6, 6.62607015e-34, 1e-300):
            assert float(_fmt(v)) == float(v), f"_fmt broke {v!r}"

    def test_fmt_zero_is_plain_zero(self):
        assert _fmt(0.0) == "0"
        assert _fmt(-0.0) == "0"

    def test_fmt_keeps_short_values_short(self):
        assert _fmt(2.6) == "2.6"
        assert _fmt(10e3) == "10000"
        assert _fmt(1e-12) == "1e-12"

    def test_full_mic_amp_exports(self, mic_amp_40db):
        deck = export_netlist(mic_amp_40db.circuit, title="Fig. 4 deck")
        assert deck.startswith("* Fig. 4 deck")
        # every MOSFET present
        n_mos = sum(1 for line in deck.splitlines() if line.startswith("Mm")
                    or line.startswith("Mt") or line.startswith("Msw"))
        assert n_mos == len(mic_amp_40db.circuit.mosfets())


def _golden_circuit(reorder: bool = False) -> Circuit:
    """A deck exercising MOS, BJT and diode model cards plus the _fmt
    edge cases (sub-femto, zero, full-precision mantissas).  Models are
    constructed explicitly so the golden file pins the *export* code, not
    the calibrated technology numbers."""
    nmos = MosModel(name="gold_n", polarity="nmos", vth0=0.7, kp=9.1e-5,
                    gamma=0.6, phi=0.7, clm=0.06e-6, kf=2.4999999999e-24,
                    cgso=2.2e-10, cgdo=2.2e-10)
    pmos = MosModel(name="gold_p", polarity="pmos", vth0=0.75, kp=3.2e-5,
                    gamma=0.5, phi=0.7, clm=0.08e-6, kf=1e-24,
                    cgso=2.6e-10, cgdo=2.6e-10)
    pnp = BjtModel(name="gold_pnp", polarity="pnp", is_sat=2e-17)
    dio = DiodeModel(name="gold_d", is_sat=1e-16, n_ideality=1.02)

    ckt = Circuit("golden")
    ckt.vsource("vdd", "vdd", "gnd", dc=2.6, ac=1.0)
    ckt.vsource("vz", "z", "gnd", dc=-0.0)           # negative zero -> "0"
    ckt.resistor("rl", "vdd", "out", 1e4 / 3.0)      # full-precision mantissa
    ckt.capacitor("ctiny", "out", "gnd", 0.5e-15)    # sub-femto
    if reorder:  # same contents, different insertion order
        ckt.mosfet("m2", "z", "out", "vdd", "vdd", pmos, 120e-6, 4e-6)
        ckt.mosfet("m1", "out", "in", "gnd", "gnd", nmos, 50e-6, 2e-6)
    else:
        ckt.mosfet("m1", "out", "in", "gnd", "gnd", nmos, 50e-6, 2e-6)
        ckt.mosfet("m2", "z", "out", "vdd", "vdd", pmos, 120e-6, 4e-6)
    ckt.vsource("vin", "in", "gnd", dc=0.9)
    ckt.bjt("q1", "gnd", "gnd", "e1", pnp)
    ckt.isource("ib", "e1", "gnd", dc=-20e-6)
    ckt.diode("d1", "e1", "z", dio, area=2.0)
    return ckt


class TestGoldenRoundTrip:
    GOLDEN = GOLDEN_DIR / "export_roundtrip.cir"

    def test_matches_golden_file(self):
        deck = export_netlist(_golden_circuit(), title="golden round-trip")
        assert deck == self.GOLDEN.read_text(), \
            "export output drifted from the golden deck"

    def test_model_cards_cover_all_three_families(self):
        deck = self.GOLDEN.read_text()
        assert ".model gold_n NMOS (" in deck
        assert ".model gold_p PMOS (" in deck
        assert ".model gold_pnp PNP (" in deck
        assert ".model gold_d D (" in deck

    def test_export_is_deterministic(self):
        a = export_netlist(_golden_circuit(), title="golden round-trip")
        b = export_netlist(_golden_circuit(), title="golden round-trip")
        assert a == b

    def test_model_card_order_independent_of_device_order(self):
        """Sorted model cards: the card block is canonical even when the
        devices were added in a different order."""
        def cards(deck):
            return [l for l in deck.splitlines() if l.startswith(".model")]

        assert cards(export_netlist(_golden_circuit())) == \
            cards(export_netlist(_golden_circuit(reorder=True)))

    def test_values_round_trip_exactly(self):
        deck = export_netlist(_golden_circuit())
        by_name = {line.split()[0]: line for line in deck.splitlines()
                   if line and not line.startswith(("*", "."))}
        assert float(by_name["Rrl"].split()[3]) == 1e4 / 3.0
        assert float(by_name["Cctiny"].split()[3]) == 0.5e-15
        assert by_name["Vvz"].split()[3:5] == ["DC", "0"]
        w_field = by_name["Mm1"].split()[6]
        assert w_field.startswith("W=") and float(w_field[2:]) == 50e-6
        kf = [f for f in by_name_model(deck, "gold_n").split()
              if f.startswith("KF=")][0]
        assert float(kf[3:]) == 2.4999999999e-24


def by_name_model(deck: str, name: str) -> str:
    for line in deck.splitlines():
        if line.startswith(f".model {name} "):
            return line.rstrip(")")
    raise AssertionError(f"model {name} not in deck")
