"""SPICE-deck export."""

import pytest

from repro.spice import Circuit, Pulse, Sine
from repro.spice.export import export_netlist, write_netlist


@pytest.fixture
def small_circuit(tech):
    ckt = Circuit("demo")
    ckt.vsource("vdd", "vdd", "gnd", dc=2.6, ac=1.0)
    ckt.vsource("vin", "in", "gnd", dc=0.9,
                wave=Sine(offset=0.9, amplitude=0.1, freq=1e3))
    ckt.resistor("rl", "vdd", "out", 10e3, tc1=8e-4)
    ckt.capacitor("cl", "out", "gnd", 1e-12)
    ckt.mosfet("m1", "out", "in", "gnd", "gnd", tech.nmos, 50e-6, 2e-6)
    ckt.bjt("q1", "gnd", "gnd", "e1", tech.vpnp)
    ckt.isource("ib", "e1", "gnd", dc=-20e-6)
    ckt.switch("s1", "out", "tap", closed=True, ron=100.0)
    ckt.resistor("rtap", "tap", "gnd", 1e3)
    return ckt


class TestExport:
    def test_contains_every_element(self, small_circuit):
        deck = export_netlist(small_circuit)
        for prefix in ("Vvdd", "Vvin", "Rrl", "Ccl", "Mm1", "Qq1", "Iib", "Rs1"):
            assert prefix in deck, f"{prefix} missing from deck"

    def test_ground_is_node_zero(self, small_circuit):
        deck = export_netlist(small_circuit)
        assert "Vvdd vdd 0 DC 2.6 AC 1 0" in deck

    def test_model_cards_emitted_once(self, small_circuit, tech):
        deck = export_netlist(small_circuit)
        assert deck.count(f".model {tech.nmos.name} NMOS") == 1
        assert deck.count(f".model {tech.vpnp.name} PNP") == 1

    def test_sine_wave_rendered(self, small_circuit):
        deck = export_netlist(small_circuit)
        assert "SIN(0.9 0.1 1000" in deck

    def test_pulse_and_pwl(self, tech):
        ckt = Circuit("w")
        ckt.vsource("v1", "a", "gnd",
                    wave=Pulse(v1=0, v2=1, delay=1e-6, rise=1e-9,
                               fall=1e-9, width=1e-3, period=2e-3))
        ckt.resistor("r1", "a", "gnd", 1.0)
        deck = export_netlist(ckt)
        assert "PULSE(0 1 1e-06" in deck

    def test_ends_with_end_card(self, small_circuit):
        assert export_netlist(small_circuit).rstrip().endswith(".end")

    def test_write_netlist(self, small_circuit, tmp_path):
        path = tmp_path / "demo.cir"
        write_netlist(small_circuit, str(path))
        assert path.read_text().startswith("* demo")

    def test_resistor_tempco_exported(self, small_circuit):
        deck = export_netlist(small_circuit)
        assert "TC=0.0008,0" in deck

    def test_full_mic_amp_exports(self, mic_amp_40db):
        deck = export_netlist(mic_amp_40db.circuit, title="Fig. 4 deck")
        assert deck.startswith("* Fig. 4 deck")
        # every MOSFET present
        n_mos = sum(1 for line in deck.splitlines() if line.startswith("Mm")
                    or line.startswith("Mt") or line.startswith("Msw"))
        assert n_mos == len(mic_amp_40db.circuit.mosfets())
