"""Circuit container and SubCircuit namespacing."""

import pytest

from repro.spice import Circuit, GROUND
from repro.spice.netlist import SubCircuit, is_ground


class TestCircuit:
    def test_duplicate_names_rejected(self):
        ckt = Circuit("c")
        ckt.resistor("r1", "a", "b", 1e3)
        with pytest.raises(ValueError, match="duplicate"):
            ckt.resistor("r1", "b", "c", 2e3)

    def test_empty_name_rejected(self):
        ckt = Circuit("c")
        with pytest.raises(ValueError, match="non-empty"):
            from repro.spice.elements import Resistor

            ckt.add(Resistor("", n1="a", n2="b", value=1.0))

    def test_nodes_exclude_ground_aliases(self):
        ckt = Circuit("c")
        ckt.resistor("r1", "a", "gnd", 1e3)
        ckt.resistor("r2", "b", "0", 1e3)
        assert ckt.nodes() == ["a", "b"]

    def test_element_lookup_and_contains(self):
        ckt = Circuit("c")
        ckt.resistor("r1", "a", "b", 1e3)
        assert "r1" in ckt
        assert ckt.element("r1").value == 1e3
        with pytest.raises(KeyError):
            ckt.element("nope")

    def test_remove(self):
        ckt = Circuit("c")
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.remove("r1")
        assert "r1" not in ckt
        with pytest.raises(KeyError):
            ckt.remove("r1")

    def test_elements_of_type(self):
        ckt = Circuit("c")
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.capacitor("c1", "a", "gnd", 1e-12)
        assert len(ckt.resistors()) == 1
        assert len(ckt.mosfets()) == 0

    def test_summary_mentions_counts(self):
        ckt = Circuit("demo")
        ckt.resistor("r1", "a", "b", 1e3)
        assert "1 Resistor" in ckt.summary()
        assert "demo" in ckt.summary()

    def test_nodeset_recorded(self):
        ckt = Circuit("c")
        ckt.nodeset("x", 1.25)
        assert ckt.nodesets == {"x": 1.25}

    def test_is_ground_aliases(self):
        assert is_ground("gnd")
        assert is_ground("0")
        assert not is_ground("g")
        assert GROUND == "gnd"


class TestSubCircuit:
    def test_prefixes_internal_nodes(self):
        ckt = Circuit("top")
        sub = SubCircuit(ckt, "bias", ports={"out": "nbias"})
        sub.resistor("r1", "out", "internal", 1e3)
        el = ckt.element("bias.r1")
        assert el.n1 == "nbias"
        assert el.n2 == "bias.internal"

    def test_ground_passes_through(self):
        ckt = Circuit("top")
        sub = SubCircuit(ckt, "u1")
        sub.resistor("r1", "gnd", "x", 1e3)
        assert ckt.element("u1.r1").n1 == GROUND

    def test_two_instances_do_not_collide(self):
        ckt = Circuit("top")
        SubCircuit(ckt, "u1").resistor("r", "a", "b", 1e3)
        SubCircuit(ckt, "u2").resistor("r", "a", "b", 1e3)
        assert "u1.r" in ckt and "u2.r" in ckt
        assert ckt.element("u1.r").n1 == "u1.a"

    def test_nodeset_maps_through_ports(self):
        ckt = Circuit("top")
        sub = SubCircuit(ckt, "u1", ports={"out": "vout"})
        sub.nodeset("out", 0.5)
        sub.nodeset("inner", 0.1)
        assert ckt.nodesets["vout"] == 0.5
        assert ckt.nodesets["u1.inner"] == 0.1

    def test_mosfet_nodes_mapped(self, tech):
        ckt = Circuit("top")
        sub = SubCircuit(ckt, "amp", ports={"vdd": "vdd"})
        sub.mosfet("m1", "d", "g", "vdd", "vdd", tech.nmos, 10e-6, 2e-6)
        el = ckt.element("amp.m1")
        assert el.d == "amp.d"
        assert el.s == "vdd"

    def test_unknown_attribute_raises(self):
        ckt = Circuit("top")
        sub = SubCircuit(ckt, "u")
        with pytest.raises(AttributeError):
            sub.not_a_factory("x")
