"""Batched small-signal engine: equivalence against the looped reference.

The batched frequency-stacked path must bit-match (rtol=1e-9) the kept
per-frequency reference path on the real paper circuits — any deviation
means the shared factorization or the vectorised PSD bookkeeping broke.
"""

import numpy as np
import pytest

from repro.analysis.psrr import _signal_sources, measure_psrr
from repro.circuits.micamp import build_mic_amp
from repro.process import CMOS12
from repro.spice import Circuit, ac_analysis, dc_operating_point, noise_analysis
from repro.spice.ac import _ac_analysis_looped
from repro.spice.analysis import log_freqs
from repro.spice.linsolve import SpectralSolver, solve_looped, solve_stacked
from repro.spice.noise import _integrate_band, _noise_analysis_looped

FREQS = log_freqs(10.0, 1e6, 10)


def assert_solutions_close(actual, expected, rtol=1e-9):
    """rtol=1e-9 equivalence with an atol floor at 1e-12 of the solution
    scale, so numerically-meaningless tiny entries don't dominate."""
    atol = 1e-12 * float(np.abs(expected).max())
    np.testing.assert_allclose(actual, expected, rtol=rtol, atol=atol)


class TestSolveStacked:
    def _random_system(self, n=7, seed=3):
        rng = np.random.default_rng(seed)
        g = rng.standard_normal((n, n)) + n * np.eye(n)
        c = rng.standard_normal((n, n)) * 1e-6
        return g, c

    def test_forward_and_adjoint_match_dense_solve(self):
        g, c = self._random_system()
        freqs = np.array([10.0, 1e3, 1e5])
        rhs = np.arange(7.0)
        adj = np.eye(7)[:, :2]
        fwd, psi = solve_stacked(g, c, freqs, rhs=rhs, adjoint_rhs=adj)
        for k, f in enumerate(freqs):
            a = g + 2j * np.pi * f * c
            np.testing.assert_allclose(fwd[k, :, 0], np.linalg.solve(a, rhs), rtol=1e-9)
            np.testing.assert_allclose(psi[k], np.linalg.solve(a.T, adj), rtol=1e-9)

    def test_chunking_is_invisible(self):
        g, c = self._random_system()
        freqs = np.logspace(0, 6, 17)
        rhs = np.ones(7)
        a1, _ = solve_stacked(g, c, freqs, rhs=rhs, chunk=3)
        a2, _ = solve_stacked(g, c, freqs, rhs=rhs, chunk=64)
        a3, _ = solve_looped(g, c, freqs, rhs=rhs)
        np.testing.assert_allclose(a1, a2, rtol=1e-12)
        np.testing.assert_allclose(a1, a3, rtol=1e-9)

    def test_requires_some_rhs(self):
        g, c = self._random_system()
        with pytest.raises(ValueError, match="at least one"):
            solve_stacked(g, c, np.array([1.0]))


class TestSpectralSolver:
    """The Schur fast path against the looped LU reference on the real
    paper circuits (dense sweeps route through it automatically)."""

    def _gcb(self, op):
        ctx = op.small_signal()
        return ctx.g, ctx.c, ctx.rhs_ac()

    @pytest.mark.parametrize("which", ["micamp", "buffer"])
    def test_forward_and_adjoint_match_looped(self, which, request):
        request.getfixturevalue("mic_amp_40db" if which == "micamp" else "buffer_inverting")
        op = request.getfixturevalue("mic_amp_op" if which == "micamp" else "buffer_op")
        g, c, b = self._gcb(op)
        e = op.small_signal().output_selector(
            op.system.node_names[0], op.system.node_names[1]
        )
        solver = SpectralSolver(g, c)
        result = solver.solve(FREQS, rhs=b, adjoint_rhs=e)
        assert result is not None, "residual check must accept the paper circuits"
        fwd, adj = result
        fwd_ref, adj_ref = solve_looped(g, c, FREQS, rhs=b, adjoint_rhs=e)
        assert_solutions_close(fwd, fwd_ref)
        assert_solutions_close(adj, adj_ref)

    def test_context_routes_dense_sweeps_through_spectral(self, mic_amp_40db, mic_amp_op):
        ctx = mic_amp_op.small_signal()
        assert len(FREQS) >= 16
        ctx.solve(FREQS, rhs=ctx.rhs_ac())
        assert ctx._spectral is not None  # cached after first dense sweep
        # single-frequency probes stay on the LU path and also agree
        one = np.array([1e3])
        fwd, _ = ctx.solve(one, rhs=ctx.rhs_ac())
        ref, _ = solve_looped(ctx.g, ctx.c, one, rhs=ctx.rhs_ac())
        assert_solutions_close(fwd, ref)


class TestSpectralFallback:
    """The residual check -> LU fallback path: an ill-conditioned sweep
    must be *rejected* by the Schur fast path and silently served by the
    batched LU path, matching the looped reference."""

    def _ill_conditioned(self, n=12, seed=0):
        """A Hilbert-matrix G (condition number ~1e16): the Schur basis is
        computed from an inaccurate M = G^-1 C, so the substituted
        solutions carry O(1e-4) relative error — far beyond the 1e-10
        scaled-residual gate — while plain LU on A = G + jwC stays
        backward-stable and accurate."""
        from scipy.linalg import hilbert

        rng = np.random.default_rng(seed)
        g = hilbert(n) + 1e-14 * np.eye(n)
        c = rng.standard_normal((n, n)) * 1e-9
        return g, c, rng.standard_normal(n)

    def test_residual_check_rejects_ill_conditioned_sweep(self):
        g, c, rhs = self._ill_conditioned()
        freqs = np.logspace(1, 6, 24)
        solver = SpectralSolver(g, c)  # construction itself succeeds
        assert solver.solve(freqs, rhs=rhs) is None

    def test_fallback_result_matches_looped_reference(self):
        """What the caller actually receives after the rejection: the
        batched-LU answer, equivalent to the per-frequency loop."""
        g, c, rhs = self._ill_conditioned()
        freqs = np.logspace(1, 6, 24)
        adj = np.eye(12)[:, :2]
        fwd, psi = solve_stacked(g, c, freqs, rhs=rhs, adjoint_rhs=adj)
        fwd_ref, psi_ref = solve_looped(g, c, freqs, rhs=rhs, adjoint_rhs=adj)
        assert_solutions_close(fwd, fwd_ref)
        assert_solutions_close(psi, psi_ref)

    def test_adjoint_rejection_also_falls_back(self):
        g, c, rhs = self._ill_conditioned(seed=3)
        freqs = np.logspace(1, 6, 24)
        solver = SpectralSolver(g, c)
        assert solver.solve(freqs, adjoint_rhs=np.eye(12)[:, :1]) is None

    def test_context_falls_back_when_residual_gate_trips(
            self, mic_amp_40db, mic_amp_op, monkeypatch):
        """End-to-end wiring on a real circuit: force the gate shut and
        assert SmallSignalContext.solve silently serves the batched-LU
        answer (identical to the looped reference) for a dense sweep
        that would otherwise ride the Schur path."""
        import repro.spice.linsolve as linsolve

        ctx = mic_amp_op.small_signal()
        b = ctx.rhs_ac()
        assert ctx.spectral() is not None  # healthy circuit, fast path alive
        monkeypatch.setattr(linsolve, "SPECTRAL_RESIDUAL_TOL", -1.0)
        assert ctx.spectral().solve(FREQS, rhs=b) is None  # gate now trips
        fwd, _ = ctx.solve(FREQS, rhs=b)
        ref, _ = solve_looped(ctx.g, ctx.c, FREQS, rhs=b)
        assert_solutions_close(fwd, ref)

    def test_rejection_is_per_sweep_not_sticky(self, mic_amp_40db, mic_amp_op,
                                               monkeypatch):
        """A rejected sweep must not kill the fast path for later sweeps
        (the context keeps the decomposition; only _spectral_dead —
        construction failure — is permanent)."""
        import repro.spice.linsolve as linsolve

        ctx = mic_amp_op.small_signal()
        b = ctx.rhs_ac()
        monkeypatch.setattr(linsolve, "SPECTRAL_RESIDUAL_TOL", -1.0)
        ctx.solve(FREQS, rhs=b)               # rejected, served by LU
        monkeypatch.setattr(linsolve, "SPECTRAL_RESIDUAL_TOL", 1e-10)
        assert not ctx._spectral_dead
        assert ctx.spectral().solve(FREQS, rhs=b) is not None


class TestAcEquivalence:
    def test_micamp_batched_matches_looped(self, mic_amp_40db, mic_amp_op):
        batched = ac_analysis(mic_amp_op, FREQS)
        looped = _ac_analysis_looped(mic_amp_op, FREQS)
        assert_solutions_close(batched._x, looped._x)

    def test_powerbuffer_batched_matches_looped(self, buffer_inverting, buffer_op):
        batched = ac_analysis(buffer_op, FREQS)
        looped = _ac_analysis_looped(buffer_op, FREQS)
        assert_solutions_close(batched._x, looped._x)


class TestNoiseEquivalence:
    def _check(self, op, out_p, out_n):
        freqs = log_freqs(10.0, 100e3, 8)
        batched = noise_analysis(op, freqs, out_p, out_n)
        looped = _noise_analysis_looped(op, freqs, out_p, out_n)
        np.testing.assert_allclose(batched.output_psd, looped.output_psd, rtol=1e-9)
        np.testing.assert_allclose(batched.gain, looped.gain, rtol=1e-9)
        np.testing.assert_allclose(batched.input_psd, looped.input_psd, rtol=1e-9)
        assert set(batched.contributions) == set(looped.contributions)
        # negligible contributions get an atol floor: their transimpedance
        # is a near-cancelling difference, where elementwise rtol is
        # numerically meaningless
        atol = 1e-12 * float(looped.output_psd.max())
        for key, psd in looped.contributions.items():
            np.testing.assert_allclose(
                batched.contributions[key], psd, rtol=1e-9, atol=atol
            )

    def test_micamp(self, mic_amp_40db, mic_amp_op):
        self._check(mic_amp_op, mic_amp_40db.outp, mic_amp_40db.outn)

    def test_powerbuffer(self, buffer_inverting, buffer_op):
        self._check(buffer_op, buffer_inverting.outp, buffer_inverting.outn)


def _seed_style_psrr(circuit, supply_source, input_sources, out_p, out_n, freq):
    """The pre-batching PSRR procedure: two full looped AC analyses."""
    ins = _signal_sources(circuit, input_sources)
    sup = _signal_sources(circuit, (supply_source,))[0]
    saved = [(el, el.ac, el.ac_phase) for el in (*ins, sup)]
    try:
        op = dc_operating_point(circuit)
        for el, ac, ph in saved:
            el.ac, el.ac_phase = ac, ph
        sup.ac = 0.0
        h_sig = abs(_ac_analysis_looped(op, np.array([freq])).vdiff(out_p, out_n)[0])
        for el in ins:
            el.ac = 0.0
        sup.ac = 1.0
        sup.ac_phase = 0.0
        h_sup = abs(_ac_analysis_looped(op, np.array([freq])).vdiff(out_p, out_n)[0])
    finally:
        for el, ac, ph in saved:
            el.ac, el.ac_phase = ac, ph
    return h_sig, h_sup


class TestPsrrEquivalence:
    def test_micamp_multi_rhs_matches_seed_path(self):
        design = build_mic_amp(CMOS12, gain_code=5)
        res = measure_psrr(
            design.circuit, "vdd_src", ("vin_p", "vin_n"), design.outp, design.outn
        )
        h_sig, h_sup = _seed_style_psrr(
            design.circuit, "vdd_src", ("vin_p", "vin_n"),
            design.outp, design.outn, 1e3,
        )
        assert res.gain_signal == pytest.approx(h_sig, rel=1e-9)
        assert res.gain_disturb == pytest.approx(h_sup, rel=1e-9)

    def test_sources_restored(self):
        design = build_mic_amp(CMOS12, gain_code=5)
        before = [(el.name, el.ac, el.ac_phase)
                  for el in design.circuit if hasattr(el, "ac")]
        measure_psrr(
            design.circuit, "vdd_src", ("vin_p", "vin_n"), design.outp, design.outn
        )
        after = [(el.name, el.ac, el.ac_phase)
                 for el in design.circuit if hasattr(el, "ac")]
        assert before == after


class TestRhsCaching:
    def _circuit(self):
        ckt = Circuit("rhs_cache")
        ckt.vsource("v1", "a", "gnd", dc=1.0, ac=1.0)
        ckt.isource("i1", "a", "b", dc=2e-3)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        return ckt

    def test_rhs_dc_cache_hit_and_invalidation(self):
        ckt = self._circuit()
        system = ckt.compile()
        b1 = system.rhs_dc()
        assert system.rhs_dc() is b1  # cache hit: same array object
        ckt.element("v1").dc = 2.5
        b2 = system.rhs_dc()
        assert b2 is not b1
        assert b2[system.branch("v1")] == pytest.approx(2.5)
        # scale participates in the key (source stepping)
        b_half = system.rhs_dc(scale=0.5)
        assert b_half[system.branch("v1")] == pytest.approx(1.25)

    def test_rhs_dc_matches_hand_stamp(self):
        ckt = self._circuit()
        system = ckt.compile()
        b = system.rhs_dc()
        expected = np.zeros(system.size + 1)
        expected[system.branch("v1")] = 1.0
        expected[system.node("a")] -= 2e-3
        expected[system.node("b")] += 2e-3
        np.testing.assert_allclose(b, expected)

    def test_rhs_ac_cache_hit_and_invalidation(self):
        ckt = self._circuit()
        system = ckt.compile()
        b1 = system.rhs_ac()
        assert system.rhs_ac() is b1
        ckt.element("v1").ac = 0.25
        b2 = system.rhs_ac()
        assert b2 is not b1
        assert b2[system.branch("v1")] == pytest.approx(0.25)
        ckt.element("v1").ac_phase = np.pi
        b3 = system.rhs_ac()
        assert b3[system.branch("v1")] == pytest.approx(-0.25)


class TestIntegrateBandRegression:
    """Band-edge interpolation of _integrate_band, pinned analytically."""

    FREQS = np.array([10.0, 100.0, 1000.0])
    PSD = np.array([1.0, 2.0, 3.0])

    def test_edges_between_samples(self):
        # interp(30)=11/9, interp(300)=20/9; trapezoids over [30,100,300]
        expected = (11 / 9 + 2.0) / 2 * 70 + (2.0 + 20 / 9) / 2 * 200
        assert _integrate_band(self.FREQS, self.PSD, 30.0, 300.0) == pytest.approx(
            expected, rel=1e-12
        )
        assert expected == pytest.approx(535.0)

    def test_band_inside_one_segment(self):
        # both edges inside [10, 100]: pure interpolation, no samples used
        expected = (4 / 3 + 14 / 9) / 2 * 20
        assert _integrate_band(self.FREQS, self.PSD, 40.0, 60.0) == pytest.approx(
            expected, rel=1e-12
        )

    def test_full_span_equals_trapezoid(self):
        expected = float(np.trapezoid(self.PSD, self.FREQS))
        assert _integrate_band(self.FREQS, self.PSD, 10.0, 1000.0) == pytest.approx(
            expected, rel=1e-12
        )
