"""DC solver: convergence strategies, sweeps, operating-point access."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_operating_point, dc_sweep
from repro.spice.dc import ConvergenceError, NewtonOptions
from repro.spice.devices.diode import DiodeModel


class TestNewton:
    def test_diode_resistor(self, tech):
        ckt = Circuit("dr")
        ckt.vsource("v1", "a", "gnd", dc=2.0)
        ckt.resistor("r1", "a", "d", 1e3)
        ckt.diode("d1", "d", "gnd", DiodeModel(is_sat=1e-15))
        op = dc_operating_point(ckt)
        vd = op.v("d")
        i_r = (2.0 - vd) / 1e3
        # diode current must equal resistor current
        from repro.constants import thermal_voltage

        i_d = 1e-15 * (np.exp(vd / thermal_voltage(25.0)) - 1)
        assert i_d == pytest.approx(i_r, rel=1e-4)

    def test_mos_diode_from_cold_start(self, tech):
        ckt = Circuit("md")
        ckt.vsource("v1", "a", "gnd", dc=2.0)
        ckt.resistor("r1", "a", "d", 10e3)
        ckt.mosfet("m1", "d", "d", "gnd", "gnd", tech.nmos, 50e-6, 2e-6)
        op = dc_operating_point(ckt)
        assert 0.7 < op.v("d") < 1.4
        assert op.strategy == "newton"

    def test_nodesets_respected(self, tech):
        ckt = Circuit("ns")
        ckt.vsource("v1", "a", "gnd", dc=2.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        ckt.nodeset("b", 0.9)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(1.0, rel=1e-9)

    def test_supply_seeded_initial_guess(self, tech):
        """Nodes tied to ground by DC sources start at the source value."""
        from repro.spice.dc import _initial_guess

        ckt = Circuit("seed")
        ckt.vsource("vdd", "vdd", "gnd", dc=2.6)
        ckt.vsource("vneg", "gnd", "vss", dc=1.3)
        ckt.resistor("r", "vdd", "vss", 1e3)
        system = ckt.compile()
        x0 = _initial_guess(system)
        assert x0[system.node("vdd")] == pytest.approx(2.6)
        assert x0[system.node("vss")] == pytest.approx(-1.3)

    def test_unsolvable_circuit_raises(self, tech):
        """Two current sources forcing conflicting KCL at a node."""
        ckt = Circuit("bad")
        ckt.vsource("vdd", "vdd", "gnd", dc=2.6)
        # Both the PMOS and the source push current INTO node d1 --
        # there is no DC solution within the supplies.
        ckt.isource("i1", "vdd", "d1", dc=100e-6)
        ckt.mosfet("mp1", "d1", "d1", "vdd", "vdd", tech.pmos, 100e-6, 2e-6)
        with pytest.raises(ConvergenceError):
            dc_operating_point(ckt, options=NewtonOptions(max_iterations=40))


class TestOperatingPoint:
    def test_accessors(self, mic_amp_op):
        assert mic_amp_op.v("gnd") == 0.0
        volts = mic_amp_op.node_voltages()
        assert "outp" in volts
        assert mic_amp_op.vdiff("outp", "outn") == pytest.approx(
            volts["outp"] - volts["outn"]
        )

    def test_mos_op_unknown_name(self, mic_amp_op):
        with pytest.raises(KeyError):
            mic_amp_op.mos_op("not_a_device")

    def test_saturation_report_clean(self, mic_amp_op):
        assert mic_amp_op.saturation_report() == []

    def test_supply_current_positive(self, mic_amp_op):
        assert mic_amp_op.supply_current("vdd_src") > 1e-3


class TestDcSweep:
    def test_linear_sweep_matches_formula(self):
        ckt = Circuit("sweep")
        ckt.vsource("vin", "a", "gnd", dc=0.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "gnd", 3e3)
        values = np.linspace(-2, 2, 9)
        data = dc_sweep(ckt, "vin", values, ["b", "i(vin)"])
        assert np.allclose(data["b"], values * 0.75, atol=1e-9)
        assert np.allclose(data["i(vin)"], -values / 4e3, atol=1e-12)

    def test_sweep_restores_source(self):
        ckt = Circuit("restore")
        ckt.vsource("vin", "a", "gnd", dc=0.123)
        ckt.resistor("r1", "a", "gnd", 1e3)
        dc_sweep(ckt, "vin", np.array([1.0, 2.0]), ["a"])
        assert ckt.element("vin").dc == 0.123

    def test_sweep_rejects_non_source(self):
        ckt = Circuit("bad")
        ckt.resistor("r1", "a", "gnd", 1e3)
        with pytest.raises(TypeError):
            dc_sweep(ckt, "r1", np.array([1.0]), ["a"])


class TestStrategies:
    def test_bias_circuit_without_nodesets_finds_valid_solution(self, tech):
        """Strip the nodesets: the solver must still satisfy KCL.

        Self-biased references are multistable; without hints Newton may
        legitimately land on the degenerate low-current equilibrium (on
        the bench, that's what the start-up circuit exists to leave).
        The solver contract is a *valid* solution, checked here; finding
        the *operating* one with hints is checked in the bias tests.
        """
        from repro.circuits.bias import build_bias_circuit

        design = build_bias_circuit(tech)
        design.circuit.nodesets.clear()
        op = dc_operating_point(design.circuit)
        system = op.system
        _, resid, _ = system.assemble(op.x, system.rhs_dc())
        assert np.max(np.abs(resid[: system.num_nodes])) < 1e-8

    def test_bias_circuit_with_nodesets_finds_operating_state(self, tech):
        from repro.circuits.bias import build_bias_circuit

        design = build_bias_circuit(tech)
        op = dc_operating_point(design.circuit)
        assert op.v("iout") / 10e3 > 10e-6
