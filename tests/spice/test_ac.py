"""AC analysis: poles, resonance, margins."""

import numpy as np
import pytest

from repro.spice import Circuit, ac_analysis, dc_operating_point, transfer_function
from repro.spice.ac import loop_gain_margins


@pytest.fixture
def rc_circuit():
    ckt = Circuit("rc")
    ckt.vsource("vin", "a", "gnd", dc=0.0, ac=1.0)
    ckt.resistor("r1", "a", "b", 1e3)
    ckt.capacitor("c1", "b", "gnd", 159.154943e-9)  # fc = 1 kHz
    return ckt


class TestFirstOrder:
    def test_pole_magnitude(self, rc_circuit):
        op = dc_operating_point(rc_circuit)
        ac = ac_analysis(op, np.array([1e3]))
        assert abs(ac.v("b")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-6)

    def test_pole_phase(self, rc_circuit):
        op = dc_operating_point(rc_circuit)
        ac = ac_analysis(op, np.array([1e3]))
        assert ac.phase_deg("b")[0] == pytest.approx(-45.0, abs=0.01)

    def test_rolloff_20db_per_decade(self, rc_circuit):
        op = dc_operating_point(rc_circuit)
        ac = ac_analysis(op, np.array([1e4, 1e5]))
        drop = ac.mag_db("b")[0] - ac.mag_db("b")[1]
        assert drop == pytest.approx(20.0, abs=0.1)

    def test_transfer_function_helper(self, rc_circuit):
        op = dc_operating_point(rc_circuit)
        h = transfer_function(op, np.array([10.0]), "b")
        assert abs(h[0]) == pytest.approx(1.0, rel=1e-4)


class TestSecondOrder:
    def test_rlc_resonance(self):
        ckt = Circuit("rlc")
        ckt.vsource("vin", "a", "gnd", dc=0.0, ac=1.0)
        ckt.resistor("r1", "a", "b", 10.0)
        ckt.inductor("l1", "b", "c", 1e-3)
        ckt.capacitor("c1", "c", "gnd", 1e-9)
        op = dc_operating_point(ckt)
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-3 * 1e-9))
        ac = ac_analysis(op, np.array([f0]))
        # at series resonance the capacitor sees Q * Vin, Q = sqrt(L/C)/R
        q = np.sqrt(1e-3 / 1e-9) / 10.0
        assert abs(ac.v("c")[0]) == pytest.approx(q, rel=1e-3)

    def test_q_factor_peaking(self):
        ckt = Circuit("rlc2")
        ckt.vsource("vin", "a", "gnd", dc=0.0, ac=1.0)
        ckt.resistor("r1", "a", "b", 100.0)
        ckt.inductor("l1", "b", "gnd", 1e-3)
        op = dc_operating_point(ckt)
        # L against R: high-pass with fc = R/(2 pi L)
        fc = 100.0 / (2 * np.pi * 1e-3)
        ac = ac_analysis(op, np.array([fc]))
        assert abs(ac.v("b")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-3)


class TestAcResultAccessors:
    def test_differential_and_branch(self, rc_circuit):
        op = dc_operating_point(rc_circuit)
        ac = ac_analysis(op, np.array([1e3]))
        vdiff = ac.vdiff("a", "b")
        assert abs(vdiff[0]) > 0.0
        i_in = ac.i("vin")
        # |I| = |V_R| / R
        assert abs(i_in[0]) == pytest.approx(abs(vdiff[0]) / 1e3, rel=1e-9)


class TestLoopGainMargins:
    def test_two_pole_system(self):
        """Analytic two-pole loop: margins match the closed forms."""
        freqs = np.logspace(2, 8, 400)
        s = 2j * np.pi * freqs
        a0, p1, p2 = 1e4, 2 * np.pi * 1e3, 2 * np.pi * 1e6
        loop = a0 / ((1 + s / p1) * (1 + s / p2))
        m = loop_gain_margins(freqs, loop)
        # unity crossing of a0/(f/f1) happens near a0*f1 until p2 bends it
        assert m["f_unity"] == pytest.approx(2.7e6, rel=0.2)
        assert 15.0 < m["phase_margin_deg"] < 35.0

    def test_no_crossing_returns_nan(self):
        freqs = np.logspace(1, 3, 50)
        loop = np.full_like(freqs, 100.0, dtype=complex)
        m = loop_gain_margins(freqs, loop)
        assert np.isnan(m["f_unity"])


class TestMicAmpAc:
    def test_closed_loop_gain_flat_in_voice_band(self, mic_amp_40db, mic_amp_op):
        freqs = np.array([300.0, 1e3, 3.4e3])
        ac = ac_analysis(mic_amp_op, freqs)
        h = np.abs(ac.vdiff("outp", "outn"))
        assert np.ptp(20 * np.log10(h)) < 0.05

    def test_outputs_antiphase(self, mic_amp_40db, mic_amp_op):
        ac = ac_analysis(mic_amp_op, np.array([1e3]))
        vp = ac.v("outp")[0]
        vn = ac.v("outn")[0]
        assert abs(vp + vn) < 0.02 * abs(vp - vn)
