"""Linear MNA correctness: stamps, controlled sources, superposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, dc_operating_point

resistances = st.floats(min_value=10.0, max_value=1e6)
voltages = st.floats(min_value=-10.0, max_value=10.0)


class TestBasicStamps:
    def test_voltage_divider(self):
        ckt = Circuit("div")
        ckt.vsource("v1", "a", "gnd", dc=3.0)
        ckt.resistor("r1", "a", "b", 2e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(1.0, rel=1e-9)
        assert op.i("v1") == pytest.approx(-1e-3, rel=1e-9)  # source delivers 1 mA

    def test_current_source_into_resistor(self):
        ckt = Circuit("ir")
        ckt.isource("i1", "a", "gnd", dc=-2e-3)  # 2 mA into node a
        ckt.resistor("r1", "a", "gnd", 500.0)
        op = dc_operating_point(ckt)
        assert op.v("a") == pytest.approx(1.0, rel=1e-9)

    def test_floating_source_between_nodes(self):
        ckt = Circuit("float")
        ckt.vsource("v1", "a", "gnd", dc=1.0)
        ckt.vsource("v2", "b", "a", dc=0.5)
        ckt.resistor("r1", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(1.5, rel=1e-9)

    def test_inductor_is_dc_short(self):
        ckt = Circuit("ind")
        ckt.vsource("v1", "a", "gnd", dc=2.0)
        ckt.inductor("l1", "a", "b", 1e-3)
        ckt.resistor("r1", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(2.0, rel=1e-9)
        assert op.i("l1") == pytest.approx(2e-3, rel=1e-9)

    def test_capacitor_is_dc_open(self):
        ckt = Circuit("cap")
        ckt.vsource("v1", "a", "gnd", dc=2.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.capacitor("c1", "b", "gnd", 1e-9)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(2.0, rel=1e-9)

    def test_switch_states(self):
        ckt = Circuit("sw")
        ckt.vsource("v1", "a", "gnd", dc=1.0)
        ckt.switch("s1", "a", "b", closed=True, ron=1.0, roff=1e12)
        ckt.resistor("r1", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(1.0 * 1e3 / 1001.0, rel=1e-9)

        ckt.element("s1").closed = False
        op2 = dc_operating_point(ckt)
        assert op2.v("b") == pytest.approx(0.0, abs=1e-6)


class TestControlledSources:
    def test_vcvs(self):
        ckt = Circuit("e")
        ckt.vsource("v1", "a", "gnd", dc=0.5)
        ckt.vcvs("e1", "b", "gnd", "a", "gnd", gain=4.0)
        ckt.resistor("r1", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(2.0, rel=1e-9)

    def test_vccs(self):
        ckt = Circuit("g")
        ckt.vsource("v1", "a", "gnd", dc=1.0)
        ckt.vccs("g1", "gnd", "b", "a", "gnd", gm=1e-3)  # 1 mA into b
        ckt.resistor("r1", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(1.0, rel=1e-9)

    def test_cccs(self):
        ckt = Circuit("f")
        ckt.vsource("v1", "a", "gnd", dc=1.0)
        ckt.resistor("r1", "a", "gnd", 1e3)  # 1 mA through v1
        ckt.cccs("f1", "gnd", "b", control="v1", gain=2.0)
        ckt.resistor("r2", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        # branch current of v1 is -1 mA (delivering); F copies 2x
        assert op.v("b") == pytest.approx(-2.0, rel=1e-9)

    def test_ccvs(self):
        ckt = Circuit("h")
        ckt.vsource("v1", "a", "gnd", dc=1.0)
        ckt.resistor("r1", "a", "gnd", 500.0)
        ckt.ccvs("h1", "b", "gnd", control="v1", transresistance=1e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(-2.0, rel=1e-9)

    def test_cccs_rejects_non_branch_control(self):
        ckt = Circuit("bad")
        ckt.resistor("r1", "a", "gnd", 1e3)
        ckt.cccs("f1", "a", "gnd", control="r1", gain=1.0)
        with pytest.raises(TypeError, match="branch current"):
            ckt.compile()


class TestNetworkTheorems:
    @given(r1=resistances, r2=resistances, v=voltages)
    @settings(max_examples=25, deadline=None)
    def test_divider_formula(self, r1, r2, v):
        ckt = Circuit("div")
        ckt.vsource("v1", "a", "gnd", dc=v)
        ckt.resistor("r1", "a", "b", r1)
        ckt.resistor("r2", "b", "gnd", r2)
        op = dc_operating_point(ckt)
        assert op.v("b") == pytest.approx(v * r2 / (r1 + r2), rel=1e-8, abs=1e-12)

    @given(v1=voltages, v2=voltages)
    @settings(max_examples=20, deadline=None)
    def test_superposition(self, v1, v2):
        """Linear circuit: response to (v1, v2) = response(v1,0) + response(0,v2)."""

        def solve(a, b):
            ckt = Circuit("sup")
            ckt.vsource("va", "x", "gnd", dc=a)
            ckt.vsource("vb", "y", "gnd", dc=b)
            ckt.resistor("r1", "x", "m", 1e3)
            ckt.resistor("r2", "y", "m", 2.2e3)
            ckt.resistor("r3", "m", "gnd", 4.7e3)
            return dc_operating_point(ckt).v("m")

        both = solve(v1, v2)
        assert both == pytest.approx(solve(v1, 0.0) + solve(0.0, v2),
                                     rel=1e-8, abs=1e-10)

    def test_reciprocity(self):
        """Transfer a->b equals b->a in a passive reciprocal network."""

        def transfer(drive_at):
            ckt = Circuit("recip")
            other = "b" if drive_at == "a" else "a"
            ckt.isource("i1", "gnd", drive_at, dc=1e-3)
            ckt.resistor("r1", "a", "m", 1e3)
            ckt.resistor("r2", "m", "b", 2e3)
            ckt.resistor("r3", "m", "gnd", 3e3)
            ckt.resistor("r4", "a", "gnd", 5e3)
            ckt.resistor("r5", "b", "gnd", 7e3)
            return dc_operating_point(ckt).v(other)

        assert transfer("a") == pytest.approx(transfer("b"), rel=1e-10)

    def test_kcl_at_every_node(self, tech):
        """Residual of the solved system is tiny at every node (KCL)."""
        ckt = Circuit("kcl")
        ckt.vsource("vdd", "vdd", "gnd", dc=2.6)
        ckt.resistor("r1", "vdd", "x", 10e3)
        ckt.mosfet("m1", "x", "x", "gnd", "gnd", tech.nmos, 20e-6, 2e-6)
        op = dc_operating_point(ckt)
        system = op.system
        _, resid, _ = system.assemble(op.x, system.rhs_dc())
        assert np.max(np.abs(resid[: system.num_nodes])) < 1e-9
