"""MOSFET model physics: regions, symmetry, derivatives, temperature."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import thermal_voltage
from repro.process.technology import NMOS_12, PMOS_12
from repro.spice.devices.mosfet import MosGroup, MosModel


def evaluate_single(model, vd, vg, vs, vb, w=10e-6, l=2e-6, temp_c=25.0):
    """Evaluate one device at explicit terminal voltages."""
    grp = MosGroup(
        names=["m"],
        d=np.array([0]), g=np.array([1]), s=np.array([2]), b=np.array([3]),
        w=np.array([w]), l=np.array([l]), m=np.array([1.0]),
        models=[model], temp_c=temp_c,
    )
    volts = np.array([vd, vg, vs, vb, 0.0])
    return grp, grp.evaluate(volts)


class TestRegions:
    def test_off_device_nano_current(self):
        _, ev = evaluate_single(NMOS_12, vd=1.0, vg=0.0, vs=0.0, vb=0.0)
        assert abs(ev.into_drain[0]) < 1e-9

    def test_saturation_square_law_scale(self):
        _, ev = evaluate_single(NMOS_12, vd=2.0, vg=1.2, vs=0.0, vb=0.0)
        beta = NMOS_12.kp * 5.0
        expected = 0.5 * beta * 0.5**2 / NMOS_12.n_slope
        assert ev.into_drain[0] == pytest.approx(expected, rel=0.25)

    def test_triode_resistance(self):
        _, ev = evaluate_single(NMOS_12, vd=0.01, vg=2.0, vs=0.0, vb=0.0)
        g_expected = NMOS_12.kp * 5.0 * (2.0 - NMOS_12.vth0)
        r_actual = 0.01 / ev.into_drain[0]
        assert r_actual == pytest.approx(1.0 / g_expected, rel=0.15)

    def test_weak_inversion_exponential_slope(self):
        """In weak inversion the current decade/step follows n*UT*ln(10)."""
        ut = thermal_voltage(25.0)
        n_ut_ln10 = NMOS_12.n_slope * ut * np.log(10.0)
        _, ev1 = evaluate_single(NMOS_12, vd=1.0, vg=0.42, vs=0.0, vb=0.0)
        _, ev2 = evaluate_single(NMOS_12, vd=1.0, vg=0.42 + n_ut_ln10, vs=0.0, vb=0.0)
        ratio = ev2.into_drain[0] / ev1.into_drain[0]
        assert ratio == pytest.approx(10.0, rel=0.1)

    def test_saturation_flag(self):
        _, ev_sat = evaluate_single(NMOS_12, vd=2.0, vg=1.2, vs=0.0, vb=0.0)
        assert ev_sat.vds[0] > ev_sat.vdsat[0]
        _, ev_tri = evaluate_single(NMOS_12, vd=0.05, vg=2.0, vs=0.0, vb=0.0)
        assert ev_tri.vds[0] < ev_tri.vdsat[0]


class TestSymmetryAndPolarity:
    def test_source_drain_swap_antisymmetry(self):
        """Swapping drain and source negates the terminal current."""
        _, fwd = evaluate_single(NMOS_12, vd=0.3, vg=1.5, vs=0.0, vb=0.0)
        _, rev = evaluate_single(NMOS_12, vd=0.0, vg=1.5, vs=0.3, vb=0.0)
        assert fwd.into_drain[0] == pytest.approx(-rev.into_drain[0], rel=1e-9)
        assert rev.swapped[0]

    def test_pmos_mirrors_nmos(self):
        """A PMOS with mirrored voltages conducts the mirrored current."""
        pmodel = MosModel(name="p", polarity="pmos", vth0=0.7, kp=NMOS_12.kp,
                          gamma=NMOS_12.gamma, phi=NMOS_12.phi,
                          n_slope=NMOS_12.n_slope, clm=NMOS_12.clm)
        _, ev_n = evaluate_single(NMOS_12, vd=1.5, vg=1.2, vs=0.0, vb=0.0)
        _, ev_p = evaluate_single(pmodel, vd=-1.5, vg=-1.2, vs=0.0, vb=0.0)
        assert ev_p.into_drain[0] == pytest.approx(-ev_n.into_drain[0], rel=1e-9)

    def test_zero_vds_zero_current(self):
        _, ev = evaluate_single(NMOS_12, vd=0.0, vg=1.5, vs=0.0, vb=0.0)
        assert ev.into_drain[0] == pytest.approx(0.0, abs=1e-15)


# (vds, vg, vs) with vds > 0 keeps the device in the un-swapped frame,
# where MosEval's gm/gds/gmb are derivatives w.r.t. the physical drain /
# gate / bulk voltages (the swapped frame flips their roles, covered by
# the antisymmetry test above).
bias_points = st.tuples(
    st.floats(min_value=0.01, max_value=1.5),   # vds > 0
    st.floats(min_value=0.2, max_value=2.5),    # vg
    st.floats(min_value=0.0, max_value=1.0),    # vs
)


class TestDerivatives:
    """Analytic gm/gds/gmb must match numerical differentiation; Newton
    convergence of every circuit in the package rests on this."""

    @given(bias_points)
    @settings(max_examples=40, deadline=None)
    def test_gm_matches_numeric(self, point):
        vds, vg, vs = point
        vd = vs + vds
        h = 1e-6
        _, ev = evaluate_single(NMOS_12, vd, vg, vs, 0.0)
        _, hi = evaluate_single(NMOS_12, vd, vg + h, vs, 0.0)
        _, lo = evaluate_single(NMOS_12, vd, vg - h, vs, 0.0)
        numeric = (hi.into_drain[0] - lo.into_drain[0]) / (2 * h)
        assert ev.gm[0] == pytest.approx(numeric, rel=1e-3, abs=1e-10)

    @given(bias_points)
    @settings(max_examples=40, deadline=None)
    def test_gds_matches_numeric(self, point):
        vds, vg, vs = point
        vd = vs + vds
        h = min(1e-6, vds / 4.0)  # keep both probes in the same frame
        _, ev = evaluate_single(NMOS_12, vd, vg, vs, 0.0)
        _, hi = evaluate_single(NMOS_12, vd + h, vg, vs, 0.0)
        _, lo = evaluate_single(NMOS_12, vd - h, vg, vs, 0.0)
        numeric = (hi.into_drain[0] - lo.into_drain[0]) / (2 * h)
        assert abs(ev.gds[0] - numeric) <= max(2e-3 * ev.gds[0], 2e-9)

    @given(st.floats(min_value=0.05, max_value=1.2))
    @settings(max_examples=30, deadline=None)
    def test_gmb_matches_numeric(self, vsb):
        h = 1e-6
        _, ev = evaluate_single(NMOS_12, 2.0, 1.5 + vsb, vsb, 0.0)
        _, hi = evaluate_single(NMOS_12, 2.0, 1.5 + vsb, vsb, 0.0 + h)
        _, lo = evaluate_single(NMOS_12, 2.0, 1.5 + vsb, vsb, 0.0 - h)
        numeric = (hi.into_drain[0] - lo.into_drain[0]) / (2 * h)
        assert ev.gmb[0] == pytest.approx(numeric, rel=2e-3, abs=1e-10)

    @given(bias_points)
    @settings(max_examples=30, deadline=None)
    def test_current_is_continuous(self, point):
        """No jumps across a tiny step anywhere in the bias plane."""
        vds, vg, vs = point
        vd = vs + vds
        _, a = evaluate_single(NMOS_12, vd, vg, vs, 0.0)
        _, b = evaluate_single(NMOS_12, vd + 1e-9, vg + 1e-9, vs, 0.0)
        assert abs(a.into_drain[0] - b.into_drain[0]) < 1e-9


class TestTemperature:
    def test_vth_decreases_with_temperature(self):
        assert NMOS_12.vth_at(85.0) < NMOS_12.vth_at(25.0) < NMOS_12.vth_at(-20.0)

    def test_mobility_degrades_with_temperature(self):
        assert NMOS_12.kp_at(85.0) < NMOS_12.kp_at(25.0)

    def test_strong_inversion_current_drops_when_hot(self):
        _, cold = evaluate_single(NMOS_12, 2.0, 2.0, 0.0, 0.0, temp_c=-20.0)
        _, hot = evaluate_single(NMOS_12, 2.0, 2.0, 0.0, 0.0, temp_c=85.0)
        assert hot.into_drain[0] < cold.into_drain[0]

    def test_weak_inversion_current_rises_when_hot(self):
        _, cold = evaluate_single(NMOS_12, 1.0, 0.45, 0.0, 0.0, temp_c=-20.0)
        _, hot = evaluate_single(NMOS_12, 1.0, 0.45, 0.0, 0.0, temp_c=85.0)
        assert hot.into_drain[0] > cold.into_drain[0]


class TestNoiseModels:
    def test_thermal_noise_saturation(self):
        grp, ev = evaluate_single(NMOS_12, 2.0, 1.5, 0.0, 0.0)
        psd = grp.thermal_noise_psd(ev)[0]
        from repro.constants import BOLTZMANN

        expected = 4 * BOLTZMANN * 298.15 * (2.0 / 3.0) * ev.gm[0]
        assert psd == pytest.approx(expected, rel=0.15)

    def test_thermal_noise_triode_equals_4kt_over_ron(self):
        grp, ev = evaluate_single(NMOS_12, 0.005, 2.0, 0.0, 0.0)
        psd = grp.thermal_noise_psd(ev)[0]
        from repro.constants import BOLTZMANN

        ron = 0.005 / ev.into_drain[0]
        assert psd == pytest.approx(4 * BOLTZMANN * 298.15 / ron, rel=0.2)

    def test_flicker_scales_inverse_frequency(self):
        grp, ev = evaluate_single(NMOS_12, 2.0, 1.5, 0.0, 0.0)
        s100 = grp.flicker_noise_psd(ev, 100.0)[0]
        s1k = grp.flicker_noise_psd(ev, 1000.0)[0]
        assert s100 / s1k == pytest.approx(10.0, rel=1e-6)

    def test_flicker_scales_inverse_area(self):
        grp1, ev1 = evaluate_single(NMOS_12, 2.0, 1.5, 0.0, 0.0, w=10e-6, l=2e-6)
        grp2, ev2 = evaluate_single(NMOS_12, 2.0, 1.5, 0.0, 0.0, w=40e-6, l=2e-6)
        svg1 = grp1.flicker_noise_psd(ev1, 1e3)[0] / ev1.gm[0] ** 2
        svg2 = grp2.flicker_noise_psd(ev2, 1e3)[0] / ev2.gm[0] ** 2
        assert svg1 / svg2 == pytest.approx(4.0, rel=1e-6)

    def test_pmos_flicker_lower_than_nmos(self):
        """The process reason the paper's input pairs are PMOS."""
        assert PMOS_12.kf < NMOS_12.kf


class TestCapacitances:
    def test_gate_caps_scale_with_geometry(self):
        grp1, _ = evaluate_single(NMOS_12, 1.0, 1.0, 0.0, 0.0, w=10e-6, l=2e-6)
        grp2, _ = evaluate_single(NMOS_12, 1.0, 1.0, 0.0, 0.0, w=20e-6, l=2e-6)
        cgs1 = grp1.gate_capacitances()[0][0]
        cgs2 = grp2.gate_capacitances()[0][0]
        assert cgs2 == pytest.approx(2.0 * cgs1, rel=1e-9)

    def test_model_validation(self):
        with pytest.raises(ValueError, match="polarity"):
            MosModel(polarity="cmos")
        with pytest.raises(ValueError, match="magnitude"):
            MosModel(vth0=-0.7)
        with pytest.raises(ValueError, match="slope factor"):
            MosModel(n_slope=0.9)
