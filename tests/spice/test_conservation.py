"""Conservation-law property tests on randomly generated networks.

These attack the MNA engine where unit tests cannot: for *arbitrary*
topologies, physics fixes global invariants — Tellegen's theorem (total
power balances), passivity of resistive networks, and charge conservation
in transients.  A sign error in any stamp breaks them immediately.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, dc_operating_point, transient_analysis


def random_resistor_network(seed: int, n_nodes: int, n_extra: int) -> Circuit:
    """A connected random resistive network driven by one source."""
    rng = np.random.default_rng(seed)
    ckt = Circuit(f"rand{seed}")
    ckt.vsource("vs", "n0", "gnd", dc=float(rng.uniform(-5, 5)))
    # spanning chain guarantees connectivity
    for k in range(1, n_nodes):
        r = float(rng.uniform(10, 1e5))
        ckt.resistor(f"rc{k}", f"n{k - 1}", f"n{k}", r)
    ckt.resistor("rgnd", f"n{n_nodes - 1}", "gnd", float(rng.uniform(10, 1e5)))
    # random extra edges
    for j in range(n_extra):
        a, b = rng.integers(0, n_nodes, 2)
        if a == b:
            continue
        ckt.resistor(f"rx{j}", f"n{a}", f"n{b}", float(rng.uniform(10, 1e5)))
    return ckt


def dissipated_power(ckt: Circuit, op) -> float:
    total = 0.0
    for el in ckt.resistors():
        v = op.v(el.n1) - op.v(el.n2)
        total += v * v / el.value
    return total


class TestTellegen:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n_nodes=st.integers(min_value=2, max_value=12),
           n_extra=st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_source_power_equals_dissipation(self, seed, n_nodes, n_extra):
        ckt = random_resistor_network(seed, n_nodes, n_extra)
        op = dc_operating_point(ckt)
        source = ckt.element("vs")
        p_source = -op.i("vs") * source.dc  # delivered power
        p_diss = dissipated_power(ckt, op)
        assert p_source == pytest.approx(p_diss, rel=1e-8, abs=1e-15)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n_nodes=st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_passivity(self, seed, n_nodes):
        """A resistive network never generates power."""
        ckt = random_resistor_network(seed, n_nodes, 4)
        op = dc_operating_point(ckt)
        assert dissipated_power(ckt, op) >= 0.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_voltage_bounds(self, seed):
        """No internal node exceeds the source magnitude (max principle)."""
        ckt = random_resistor_network(seed, 8, 6)
        op = dc_operating_point(ckt)
        vmax = abs(ckt.element("vs").dc)
        for node in ckt.nodes():
            assert abs(op.v(node)) <= vmax + 1e-9


class TestChargeConservation:
    def test_capacitor_charge_sharing(self):
        """Two caps connected through a resistor: final voltage is the
        charge-weighted average (charge conserved through the transient)."""
        ckt = Circuit("share")
        c1, c2 = 1e-9, 3e-9
        ckt.capacitor("c1", "a", "gnd", c1)
        ckt.capacitor("c2", "b", "gnd", c2)
        ckt.resistor("r", "a", "b", 1e3)
        # precharge c1 via a source that steps away at t=0... instead:
        # start from DC with a source, then remove it is not possible in
        # one run; use a large-R source that dominates initially.
        ckt.vsource("vpre", "a_src", "gnd", dc=1.0)
        # Precharge network: c1 held at 1 V, c2 shorted to ground.
        ckt.switch("s_pre", "a_src", "a", closed=True, ron=1.0)
        ckt.switch("s_gnd", "b", "gnd", closed=True, ron=1.0)
        op = dc_operating_point(ckt)
        assert op.v("a") == pytest.approx(1.0, rel=1e-3)
        assert abs(op.v("b")) < 1e-3
        # Open both switches and watch the charge redistribute; the
        # precharged state is handed over as the initial condition (with
        # the switches open the caps float at DC, so a fresh OP would be
        # singular -- the point of the test).
        ckt.element("s_pre").closed = False
        ckt.element("s_gnd").closed = False
        tr = transient_analysis(ckt, 40e-6, 20e-9, op0=op)
        v_final_a = tr.v("a")[-1]
        v_final_b = tr.v("b")[-1]
        expected = 1.0 * c1 / (c1 + c2)
        assert v_final_a == pytest.approx(expected, rel=0.02)
        assert v_final_b == pytest.approx(expected, rel=0.02)

    def test_rc_energy_balance(self):
        """Energy delivered = energy stored + energy dissipated."""
        from repro.spice.elements import Pulse

        ckt = Circuit("energy")
        ckt.vsource("vs", "a", "gnd", dc=0.0,
                    wave=Pulse(v1=0.0, v2=1.0, delay=0.0, rise=1e-9,
                               width=1.0, period=2.0))
        ckt.resistor("r", "a", "b", 1e3)
        ckt.capacitor("c", "b", "gnd", 1e-9)
        tr = transient_analysis(ckt, 10e-6, 5e-9)
        i_src = -tr.i("vs")
        v_src = tr.v("a")
        dt = tr.dt
        e_delivered = float(np.sum(i_src * v_src) * dt)
        vr = tr.v("a") - tr.v("b")
        e_dissipated = float(np.sum(vr**2 / 1e3) * dt)
        e_stored = 0.5 * 1e-9 * tr.v("b")[-1] ** 2
        assert e_delivered == pytest.approx(e_dissipated + e_stored, rel=0.02)
        # the classic identity: at full charge each is half the input energy
        assert e_stored == pytest.approx(e_dissipated, rel=0.05)


class TestNonlinearKcl:
    @given(vdd=st.floats(min_value=1.5, max_value=5.0),
           vg=st.floats(min_value=0.0, max_value=2.5))
    @settings(max_examples=20, deadline=None)
    def test_mos_branch_current_balance(self, tech, vdd, vg):
        """Current out of the supply equals current into ground for any
        bias of a CMOS branch."""
        ckt = Circuit("kcl_nl")
        ckt.vsource("vdd", "vdd", "gnd", dc=vdd)
        ckt.vsource("vg", "g", "gnd", dc=vg)
        ckt.resistor("r", "vdd", "d", 10e3)
        ckt.mosfet("m1", "d", "g", "gnd", "gnd", tech.nmos, 20e-6, 2e-6)
        op = dc_operating_point(ckt)
        i_vdd = op.i("vdd")
        i_r = (op.v("vdd") - op.v("d")) / 10e3
        assert -i_vdd == pytest.approx(i_r, rel=1e-9, abs=1e-15)
