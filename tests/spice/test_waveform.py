"""Waveform/Spectrum measurements against synthetic signals."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.waveform import Spectrum, Waveform, make_time_grid


def sine_wave(freq=1e3, amp=1.0, n_cycles=4, fs=200e3, offset=0.0, phase=0.0):
    t = np.arange(int(n_cycles * fs / freq)) / fs
    return Waveform(t, offset + amp * np.sin(2 * np.pi * freq * t + phase))


class TestBasicMeasures:
    def test_rms_of_sine(self):
        w = sine_wave(amp=2.0)
        assert w.rms() == pytest.approx(2.0 / np.sqrt(2), rel=1e-3)

    def test_peak_to_peak(self):
        w = sine_wave(amp=1.5)
        assert w.peak_to_peak() == pytest.approx(3.0, rel=1e-3)

    def test_mean_and_ac_rms(self):
        w = sine_wave(amp=1.0, offset=0.7)
        assert w.mean() == pytest.approx(0.7, abs=1e-6)
        assert w.ac_rms() == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_max_slope_of_sine(self):
        w = sine_wave(freq=1e3, amp=1.0, fs=1e6)
        assert w.max_slope() == pytest.approx(2 * np.pi * 1e3, rel=1e-3)

    def test_slice_and_validation(self):
        w = sine_wave()
        seg = w.slice_time(1e-3, 2e-3)
        assert seg.duration == pytest.approx(1e-3, rel=1e-2)
        with pytest.raises(ValueError):
            w.slice_time(1.0, 2.0)

    def test_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(5.0), np.arange(4.0))


class TestCrossingsAndSettling:
    def test_rising_crossings_of_sine(self):
        w = sine_wave(freq=1e3, n_cycles=3, fs=1e6)
        crossings = w.crossing_times(0.0, rising=True)
        # one rising zero crossing per cycle (at start of each period)
        assert len(crossings) in (2, 3)
        spacing = np.diff(crossings)
        assert np.allclose(spacing, 1e-3, rtol=1e-3)

    def test_settling_time_of_exponential(self):
        t = np.linspace(0, 10e-6, 2000)
        y = 1.0 - np.exp(-t / 1e-6)
        w = Waveform(t, y)
        ts = w.settling_time(final=1.0, tol=0.01)
        assert ts == pytest.approx(np.log(100) * 1e-6, rel=0.05)

    def test_settling_time_never_in_band_is_nan(self):
        """A record that never reaches the tolerance band has no settling
        time at all — nan, not a misleading inf or duration (regression:
        the old code conflated this with 'entered but not settled')."""
        t = np.linspace(0, 1e-6, 100)
        w = Waveform(t, np.full_like(t, 0.5))      # flat at 0.5, target 1.0
        assert np.isnan(w.settling_time(final=1.0, tol=0.01))

    def test_settling_time_entered_but_ends_outside_is_inf(self):
        """Entering the band and leaving again by the final sample means
        'not yet settled within the record': inf, distinct from nan."""
        t = np.linspace(0, 1e-6, 100)
        y = np.zeros_like(t)
        y[40:60] = 1.0                             # visits the band, leaves
        w = Waveform(t, y)
        assert w.settling_time(final=1.0, tol=0.01) == float("inf")

    def test_settling_time_always_in_band_is_zero(self):
        t = np.linspace(0, 1e-6, 100)
        w = Waveform(t, np.ones_like(t))
        assert w.settling_time(final=1.0, tol=0.01) == 0.0


class TestFourier:
    def test_fourier_component_amplitude_phase(self):
        w = sine_wave(freq=1e3, amp=0.8, phase=0.3)
        comp = w.fourier_component(1e3)
        assert abs(comp) == pytest.approx(0.8, rel=1e-4)
        # sin(x + 0.3) = cos-based phasor offset by 0.3 - pi/2
        assert np.angle(comp) == pytest.approx(0.3 - np.pi / 2, abs=1e-3)

    def test_thd_of_synthetic_distortion(self):
        """y = sin + 0.01 sin(3x) has THD of exactly 1 %."""
        t = np.arange(8000) / 200e3
        y = np.sin(2 * np.pi * 1e3 * t) + 0.01 * np.sin(2 * np.pi * 3e3 * t)
        w = Waveform(t, y)
        assert w.thd(1e3, 5) == pytest.approx(0.01, rel=1e-3)

    def test_harmonics_vector(self):
        t = np.arange(8000) / 200e3
        y = np.sin(2 * np.pi * 1e3 * t) + 0.05 * np.sin(2 * np.pi * 2e3 * t)
        w = Waveform(t, y)
        h = w.harmonics(1e3, 3)
        assert h[0] == pytest.approx(1.0, rel=1e-3)
        assert h[1] == pytest.approx(0.05, rel=1e-2)
        assert h[2] < 1e-6

    def test_too_short_for_fundamental_raises(self):
        w = sine_wave(freq=1e3, n_cycles=4)
        with pytest.raises(ValueError):
            w.slice_time(0, 0.4e-3).fourier_component(1e3)

    @given(st.floats(min_value=0.05, max_value=2.0),
           st.floats(min_value=0.0, max_value=2 * np.pi))
    @settings(max_examples=20, deadline=None)
    def test_amplitude_recovery_property(self, amp, phase):
        w = sine_wave(freq=1e3, amp=amp, phase=phase, n_cycles=5)
        assert abs(w.fourier_component(1e3)) == pytest.approx(amp, rel=1e-3)


class TestSpectrum:
    def test_hann_peak_amplitude(self):
        w = sine_wave(freq=1e3, amp=0.5, n_cycles=32, fs=256e3)
        spec = w.spectrum("hann")
        assert spec.amplitude_at(1e3) == pytest.approx(0.5, rel=0.05)

    def test_flattop_amplitude_accuracy(self):
        # non-coherent tone: flat-top still reads the amplitude correctly
        t = np.arange(16384) / 256e3
        y = 0.5 * np.sin(2 * np.pi * 1234.5 * t)
        spec = Waveform(t, y).spectrum("flattop")
        assert spec.amplitude_at(1234.5) == pytest.approx(0.5, rel=0.02)

    def test_dbc_reference(self):
        w = sine_wave(freq=1e3, amp=1.0, n_cycles=32, fs=256e3)
        spec = w.spectrum()
        dbc = spec.db_carrier(1e3)
        k = np.argmin(np.abs(spec.freqs - 1e3))
        assert dbc[k] == pytest.approx(0.0, abs=0.1)

    def test_unknown_window_rejected(self):
        w = sine_wave()
        with pytest.raises(ValueError):
            w.spectrum("blackman-nuttall-9000")


class TestTimeGrid:
    def test_make_time_grid(self):
        t_stop, dt = make_time_grid(1e3, 4, 500)
        assert t_stop == pytest.approx(4e-3)
        assert dt == pytest.approx(1 / (1e3 * 500))
