"""Unit tests for the tensor batch engine (`repro.spice.batch`).

The campaign-level equivalence suite proves end-to-end byte-identity;
these tests pin the engine's individual contracts so a regression is
localised: stamp replay reproduces a real compile bit for bit, the
lockstep Newton matches the serial iterate unit by unit, the batched
small-signal context matches the serial factorization, and structural
mismatches raise instead of silently mis-stamping.
"""

import numpy as np
import pytest

from repro.circuits.micamp import build_mic_amp
from repro.process import CMOS12, MismatchSampler
from repro.spice.batch import (
    BatchedSystem,
    BatchStructureError,
    circuit_signature,
    newton_batch,
)
from repro.spice.dc import _initial_guess, dc_operating_point
from repro.spice.elements import Capacitor, Resistor
from repro.spice.linsolve import BatchedSmallSignalContext
from repro.spice.netlist import Circuit


def _mismatch_circuits(seeds, temps):
    """Same-topology micamp variants: one circuit per seed, repeated
    across temps in unit order (temperature innermost, like a spec)."""
    circuits, unit_temps = [], []
    for seed in seeds:
        sampler = MismatchSampler(CMOS12, np.random.default_rng(seed))
        built = build_mic_amp(CMOS12, gain_code=5, mismatch=sampler)
        for t in temps:
            circuits.append(built.circuit)
            unit_temps.append(t)
    return circuits, unit_temps


@pytest.fixture(scope="module")
def batch():
    circuits, temps = _mismatch_circuits(seeds=(0, 1, 2), temps=(-20.0, 85.0))
    pattern = circuits[0].compile(temp_c=temps[0])
    return circuits, temps, pattern, BatchedSystem(pattern, circuits, temps)


class TestStampReplay:
    def test_every_unit_slice_matches_a_real_compile(self, batch):
        circuits, temps, _, bs = batch
        for u, (circ, t) in enumerate(zip(circuits, temps)):
            ref = circ.compile(temp_c=t)
            assert np.array_equal(bs.g_t[u], ref.g_static), f"G mismatch, unit {u}"
            assert np.array_equal(bs.c_t[u], ref.c_static), f"C mismatch, unit {u}"

    def test_rhs_and_guess_match_serial(self, batch):
        circuits, temps, _, bs = batch
        rhs = bs.rhs_dc()
        guess = bs.initial_guess()
        for u, (circ, t) in enumerate(zip(circuits, temps)):
            ref = circ.compile(temp_c=t)
            assert np.array_equal(rhs[u], ref.rhs_dc())
            assert np.array_equal(guess[u], _initial_guess(ref))


class TestNewtonLockstep:
    def test_converged_units_bitwise_equal_serial(self, batch):
        circuits, temps, _, bs = batch
        converged, x, iterations = newton_batch(bs, bs.initial_guess(),
                                                bs.rhs_dc())
        assert converged.all(), "reference circuits must converge plain-Newton"
        for u, (circ, t) in enumerate(zip(circuits, temps)):
            op = dc_operating_point(circ, temp_c=t)
            assert op.strategy == "newton"
            assert iterations[u] == op.iterations
            assert np.array_equal(x[u], op.x), f"solution drifted, unit {u}"


class TestBatchedSmallSignal:
    def test_solve_matches_serial_context(self, batch):
        circuits, temps, pattern, bs = batch
        _, x, _ = newton_batch(bs, bs.initial_guess(), bs.rhs_dc())
        n = pattern.size
        ctx = BatchedSmallSignalContext(
            np.ascontiguousarray(bs.linearize(x)[:, :n, :n]),
            np.ascontiguousarray(bs.c_t[:, :n, :n]))
        rhs = np.zeros((bs.n_units, n, 1), dtype=complex)
        serial_cols = []
        for u, (circ, t) in enumerate(zip(circuits, temps)):
            op = dc_operating_point(circ, temp_c=t)
            sctx = op.small_signal()
            assert np.array_equal(ctx.g[u], sctx.g)
            assert np.array_equal(ctx.c[u], sctx.c)
            b = sctx.rhs_ac()
            rhs[u, :, 0] = b
            fwd, _ = sctx.solve(np.array([1e3]), rhs=b)
            serial_cols.append(fwd[0])
        got, ok = ctx.solve_checked(1e3, rhs)
        assert ok.all()
        for u, ref in enumerate(serial_cols):
            assert np.array_equal(got[u], ref), f"AC solution drifted, unit {u}"

    def test_factorization_cached_per_frequency(self, batch):
        _, _, pattern, bs = batch
        n = pattern.size
        _, x, _ = newton_batch(bs, bs.initial_guess(), bs.rhs_dc())
        ctx = BatchedSmallSignalContext(
            np.ascontiguousarray(bs.linearize(x)[:, :n, :n]),
            np.ascontiguousarray(bs.c_t[:, :n, :n]))
        rhs = np.ones((bs.n_units, n, 1), dtype=complex)
        ctx.solve(1e3, rhs)
        ent = ctx._factors[1e3]
        ctx.solve(1e3, rhs)
        assert ctx._factors[1e3] is ent
        ctx.solve(2e3, rhs)
        assert set(ctx._factors) == {1e3, 2e3}


class TestStructureGuards:
    def test_signature_distinguishes_topologies(self):
        a = Circuit("a")
        a.add(Resistor(name="r1", n1="x", n2="0", value=1e3))
        b = Circuit("b")
        b.add(Resistor(name="r1", n1="x", n2="y", value=1e3))
        c = Circuit("c")
        c.add(Capacitor(name="r1", n1="x", n2="0", value=1e-12))
        assert circuit_signature(a) != circuit_signature(b)
        assert circuit_signature(a) != circuit_signature(c)
        clone = Circuit("a2")
        clone.add(Resistor(name="r1", n1="x", n2="0", value=2e3))
        assert circuit_signature(a) == circuit_signature(clone)

    def test_mismatched_structure_raises(self, batch):
        circuits, temps, pattern, _ = batch
        other = Circuit("other")
        other.add(Resistor(name="r1", n1="x", n2="0", value=1e3))
        with pytest.raises(BatchStructureError):
            BatchedSystem(pattern, [circuits[0], other], [temps[0], temps[0]])

    def test_check_structure_false_still_guards_unit_zero(self, batch):
        """Even with the signature walk skipped, a pattern that does not
        belong to unit 0 trips the compile-replay guard."""
        circuits, temps, _, _ = batch
        alien = Circuit("alien")
        alien.add(Resistor(name="r1", n1="x", n2="0", value=1e3))
        alien_pattern = alien.compile(temp_c=temps[0])
        with pytest.raises(BatchStructureError):
            BatchedSystem(alien_pattern, [circuits[0]], [temps[0]],
                          check_structure=False)
