"""Element definitions: waveforms, validation, conventions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spice.elements import (
    Capacitor,
    Inductor,
    Mosfet,
    Pulse,
    Pwl,
    Resistor,
    Sine,
    Switch,
    VoltageSource,
)


class TestSine:
    def test_value_at_zero_no_delay(self):
        wave = Sine(offset=0.5, amplitude=1.0, freq=1e3)
        assert wave(0.0) == pytest.approx(0.5)

    def test_peak_at_quarter_period(self):
        wave = Sine(amplitude=2.0, freq=1e3)
        assert wave(0.25e-3) == pytest.approx(2.0, rel=1e-9)

    def test_holds_offset_before_delay(self):
        wave = Sine(offset=0.3, amplitude=1.0, freq=1e3, delay=1e-3)
        assert wave(0.5e-3) == pytest.approx(0.3)

    def test_phase_shift(self):
        wave = Sine(amplitude=1.0, freq=1e3, phase=math.pi / 2)
        assert wave(0.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=1e-2))
    def test_bounded_by_offset_plus_amplitude(self, t):
        wave = Sine(offset=0.1, amplitude=0.7, freq=3.3e3)
        assert abs(wave(t) - 0.1) <= 0.7 + 1e-12


class TestPulse:
    def test_initial_level(self):
        wave = Pulse(v1=-1.0, v2=1.0, delay=1e-6)
        assert wave(0.0) == -1.0

    def test_high_level_after_rise(self):
        wave = Pulse(v1=0.0, v2=1.0, delay=0.0, rise=1e-9, width=1e-6, period=2e-6)
        assert wave(0.5e-6) == pytest.approx(1.0)

    def test_mid_rise_interpolation(self):
        wave = Pulse(v1=0.0, v2=2.0, delay=0.0, rise=10e-9, width=1e-6, period=10e-6)
        assert wave(5e-9) == pytest.approx(1.0)

    def test_falls_back_to_v1(self):
        wave = Pulse(v1=0.2, v2=1.0, delay=0.0, rise=1e-9, fall=1e-9,
                     width=1e-6, period=10e-6)
        assert wave(5e-6) == pytest.approx(0.2)

    def test_periodicity(self):
        wave = Pulse(v1=0.0, v2=1.0, delay=0.0, rise=1e-9, fall=1e-9,
                     width=1e-6, period=2e-6)
        assert wave(0.5e-6) == pytest.approx(wave(2.5e-6))


class TestPwl:
    def test_interpolates(self):
        wave = Pwl(times=(0.0, 1.0), values=(0.0, 2.0))
        assert wave(0.25) == pytest.approx(0.5)

    def test_clamps_outside_range(self):
        wave = Pwl(times=(1.0, 2.0), values=(3.0, 5.0))
        assert wave(0.0) == 3.0
        assert wave(9.0) == 5.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            Pwl(times=(0.0, 1.0), values=(0.0,))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Pwl(times=(1.0, 0.5), values=(0.0, 1.0))


class TestValidation:
    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="must be > 0"):
            Resistor("r1", n1="a", n2="b", value=0.0)

    def test_capacitor_rejects_negative(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Capacitor("c1", n1="a", n2="b", value=-1e-12)

    def test_inductor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Inductor("l1", n1="a", n2="b", value=0.0)

    def test_switch_rejects_bad_resistances(self):
        with pytest.raises(ValueError):
            Switch("s1", n1="a", n2="b", closed=True, ron=0.0)

    def test_mosfet_rejects_zero_width(self):
        with pytest.raises(ValueError, match="W and L"):
            Mosfet("m1", d="d", g="g", s="s", b="b", w=0.0)

    def test_mosfet_rejects_zero_multiplier(self):
        with pytest.raises(ValueError, match="multiplier"):
            Mosfet("m1", d="d", g="g", s="s", b="b", m=0)


class TestResistorTemperature:
    def test_nominal_at_25c(self):
        r = Resistor("r", n1="a", n2="b", value=1e3, tc1=1e-3)
        assert r.value_at(25.0) == pytest.approx(1e3)

    def test_tc1_slope(self):
        r = Resistor("r", n1="a", n2="b", value=1e3, tc1=1e-3)
        assert r.value_at(125.0) == pytest.approx(1100.0)

    def test_tc2_curvature(self):
        r = Resistor("r", n1="a", n2="b", value=1e3, tc2=1e-6)
        assert r.value_at(125.0) == pytest.approx(1e3 * (1 + 1e-6 * 100**2))


class TestSourceConventions:
    def test_vsource_value_at_uses_wave(self):
        src = VoltageSource("v1", np="a", nn="b", dc=1.0,
                            wave=Sine(offset=0.0, amplitude=1.0, freq=1e3))
        assert src.value_at(0.0) == pytest.approx(0.0)

    def test_vsource_value_at_falls_back_to_dc(self):
        src = VoltageSource("v1", np="a", nn="b", dc=0.7)
        assert src.value_at(123.0) == 0.7

    def test_switch_resistance_follows_state(self):
        sw = Switch("s", n1="a", n2="b", closed=False, ron=10.0, roff=1e9)
        assert sw.resistance == 1e9
        sw.closed = True
        assert sw.resistance == 10.0
