"""Transient integration: analytic RC/RL responses, steady state, rescue."""

import numpy as np
import pytest

from repro.spice import Circuit, Pulse, Sine, transient_analysis
from repro.spice.waveform import Waveform


class TestRcStep:
    def make(self, dt_rise=1e-9):
        ckt = Circuit("rc")
        ckt.vsource("vin", "a", "gnd", dc=0.0,
                    wave=Pulse(v1=0.0, v2=1.0, delay=0.0, rise=dt_rise,
                               fall=dt_rise, width=1.0, period=2.0))
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.capacitor("c1", "b", "gnd", 1e-9)
        return ckt

    @pytest.mark.parametrize("method", ["be", "trap"])
    def test_exponential_charge(self, method):
        ckt = self.make()
        tr = transient_analysis(ckt, 5e-6, 5e-9, method=method)
        tau = 1e-6
        expected = 1.0 - np.exp(-tr.t / tau)
        err = np.max(np.abs(tr.v("b") - expected))
        assert err < 0.01

    def test_final_value(self):
        ckt = self.make()
        tr = transient_analysis(ckt, 10e-6, 10e-9)
        assert tr.v("b")[-1] == pytest.approx(1.0, abs=1e-4)

    def test_initial_condition_from_dc(self):
        ckt = self.make()
        # Pulse starts at v1=0, so the cap starts discharged.
        tr = transient_analysis(ckt, 1e-6, 10e-9)
        assert abs(tr.v("b")[0]) < 1e-9


class TestRlStep:
    def test_inductor_current_ramp(self):
        ckt = Circuit("rl")
        ckt.vsource("vin", "a", "gnd", dc=0.0,
                    wave=Pulse(v1=0.0, v2=1.0, delay=0.0, rise=1e-9,
                               width=1.0, period=2.0))
        ckt.resistor("r1", "a", "b", 100.0)
        ckt.inductor("l1", "b", "gnd", 1e-3)
        tr = transient_analysis(ckt, 50e-6, 50e-9)
        tau = 1e-3 / 100.0
        i_expected = (1.0 / 100.0) * (1.0 - np.exp(-tr.t / tau))
        err = np.max(np.abs(tr.i("l1") - i_expected))
        assert err < 2e-4


class TestSineSteadyState:
    def test_rc_sine_amplitude_and_phase(self):
        ckt = Circuit("rcs")
        ckt.vsource("vin", "a", "gnd", dc=0.0,
                    wave=Sine(amplitude=1.0, freq=1e3))
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.capacitor("c1", "b", "gnd", 159.154943e-9)
        tr = transient_analysis(ckt, 5e-3, 1e-6)
        w_out = Waveform(tr.t, tr.v("b")).last_cycles(1e3, 2)
        w_in = Waveform(tr.t, tr.v("a")).last_cycles(1e3, 2)
        comp_out = w_out.fourier_component(1e3)
        comp_in = w_in.fourier_component(1e3)
        assert abs(comp_out) == pytest.approx(1 / np.sqrt(2), rel=5e-3)
        phase = np.degrees(np.angle(comp_out / comp_in))
        assert phase == pytest.approx(-45.0, abs=1.0)

    def test_vsource_follows_wave_exactly(self):
        ckt = Circuit("src")
        ckt.vsource("vin", "a", "gnd", dc=0.0, wave=Sine(amplitude=0.5, freq=2e3))
        ckt.resistor("r1", "a", "gnd", 1e3)
        tr = transient_analysis(ckt, 1e-3, 1e-6)
        expected = 0.5 * np.sin(2 * np.pi * 2e3 * tr.t)
        assert np.max(np.abs(tr.v("a") - expected)) < 1e-9


class TestRobustness:
    def test_rejects_bad_grid(self):
        ckt = Circuit("bad")
        ckt.vsource("v", "a", "gnd", dc=1.0)
        ckt.resistor("r", "a", "gnd", 1.0)
        with pytest.raises(ValueError):
            transient_analysis(ckt, -1.0, 1e-9)
        with pytest.raises(ValueError):
            transient_analysis(ckt, 1e-6, 0.0)

    def test_nonlinear_clipping_survives(self, tech):
        """A hard-clipped amplifier stage must integrate without failure."""
        ckt = Circuit("clip")
        ckt.vsource("vdd", "vdd", "gnd", dc=2.6)
        ckt.vsource("vin", "in", "gnd", dc=0.9,
                    wave=Sine(offset=0.9, amplitude=0.8, freq=10e3))
        ckt.resistor("rl", "vdd", "out", 10e3, noisy=False)
        ckt.mosfet("m1", "out", "in", "gnd", "gnd", tech.nmos, 50e-6, 2e-6)
        ckt.capacitor("cl", "out", "gnd", 1e-12)
        tr = transient_analysis(ckt, 2e-4, 2e-7)
        out = tr.v("out")
        assert out.min() > -0.1
        assert out.max() < 2.7

    def test_result_accessors(self):
        ckt = Circuit("acc")
        ckt.vsource("v", "a", "gnd", dc=1.0)
        ckt.resistor("r", "a", "b", 1e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        tr = transient_analysis(ckt, 1e-6, 1e-7)
        assert tr.dt == pytest.approx(1e-7)
        assert np.allclose(tr.vdiff("a", "b"), tr.v("a") - tr.v("b"))
        assert np.allclose(tr.v("gnd"), 0.0)
