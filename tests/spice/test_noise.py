"""Noise analysis: textbook identities and internal consistency.

The killer validation is the kT/C identity: the total output noise of an
RC filter integrates to sqrt(kT/C) regardless of R — if the adjoint
machinery, PSD bookkeeping or integration were wrong by any constant
factor, this test would catch it.
"""

import numpy as np
import pytest

from repro.constants import BOLTZMANN
from repro.spice import Circuit, dc_operating_point, noise_analysis
from repro.spice.analysis import log_freqs

KT = BOLTZMANN * 298.15


def make_rc(r=1e3, c=1e-9):
    ckt = Circuit("rc_noise")
    ckt.vsource("vin", "a", "gnd", dc=0.0, ac=1.0)
    ckt.resistor("r1", "a", "b", r)
    ckt.capacitor("c1", "b", "gnd", c)
    return ckt


class TestTextbookIdentities:
    def test_resistor_psd_is_4ktr(self):
        ckt = make_rc(r=10e3, c=1e-15)  # pole far above the sweep
        op = dc_operating_point(ckt)
        nr = noise_analysis(op, np.array([10.0, 1e3]), "b")
        assert nr.output_psd[0] == pytest.approx(4 * KT * 10e3, rel=1e-3)

    @pytest.mark.parametrize("r", [1e2, 1e4, 1e6])
    def test_kt_over_c_total_noise(self, r):
        """Integrated RC output noise = sqrt(kT/C), independent of R."""
        c = 1e-9
        fc = 1.0 / (2 * np.pi * r * c)
        freqs = log_freqs(fc * 1e-3, fc * 1e3, 24)
        ckt = make_rc(r=r, c=c)
        op = dc_operating_point(ckt)
        nr = noise_analysis(op, freqs, "b")
        total = nr.integrated_output_rms(freqs[0], freqs[-1])
        expected = np.sqrt(KT / c)
        assert total == pytest.approx(expected, rel=0.02)

    def test_divider_input_referral(self):
        """Output noise of a 2:1 divider referred to the input doubles."""
        ckt = Circuit("div")
        ckt.vsource("vin", "a", "gnd", dc=0.0, ac=1.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        nr = noise_analysis(op, np.array([1e3]), "b")
        # output PSD = 4kT*(R1||R2); gain = 1/2; input PSD = 4x output
        assert nr.output_psd[0] == pytest.approx(4 * KT * 500.0, rel=1e-6)
        assert nr.gain[0] == pytest.approx(0.5, rel=1e-9)
        assert nr.input_psd[0] == pytest.approx(4 * nr.output_psd[0], rel=1e-6)

    def test_noiseless_resistor_excluded(self):
        ckt = Circuit("quiet")
        ckt.vsource("vin", "a", "gnd", dc=0.0, ac=1.0)
        ckt.resistor("r1", "a", "b", 1e3, noisy=False)
        ckt.resistor("r2", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        nr = noise_analysis(op, np.array([1e3]), "b")
        assert nr.output_psd[0] == pytest.approx(4 * KT * 500.0 / 2.0, rel=1e-6)


class TestConsistency:
    def test_contributions_sum_to_total(self, mic_amp_noise):
        total = sum(psd for psd in mic_amp_noise.contributions.values())
        assert np.allclose(total, mic_amp_noise.output_psd, rtol=1e-9)

    def test_all_contributions_nonnegative(self, mic_amp_noise):
        for psd in mic_amp_noise.contributions.values():
            assert np.all(psd >= 0.0)

    def test_psd_positive_everywhere(self, mic_amp_noise):
        assert np.all(mic_amp_noise.output_psd > 0.0)

    def test_requires_ac_stimulus(self):
        ckt = Circuit("noac")
        ckt.vsource("vin", "a", "gnd", dc=1.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        op = dc_operating_point(ckt)
        with pytest.raises(ValueError, match="AC stimulus"):
            noise_analysis(op, np.array([1e3]), "b")

    def test_band_edges_validated(self, mic_amp_noise):
        with pytest.raises(ValueError, match="empty"):
            mic_amp_noise.integrated_input_rms(1e3, 1e3)
        with pytest.raises(ValueError, match="outside"):
            mic_amp_noise.integrated_input_rms(1e-3, 1e3)


class TestMicAmpNoiseShape:
    """The Fig. 7 shape requirements from DESIGN.md acceptance criteria."""

    def test_monotone_decreasing_to_floor(self, mic_amp_noise):
        nv = mic_amp_noise.input_nv()
        f = mic_amp_noise.freqs
        low = nv[np.argmin(np.abs(f - 30.0))]
        mid = nv[np.argmin(np.abs(f - 1e3))]
        high = nv[np.argmin(np.abs(f - 30e3))]
        assert low > mid > high * 0.99

    def test_flicker_slope_at_low_frequency(self, mic_amp_noise):
        """Below the corner the PSD rises roughly as 1/f."""
        psd10 = np.interp(10.0, mic_amp_noise.freqs, mic_amp_noise.input_psd)
        psd100 = np.interp(100.0, mic_amp_noise.freqs, mic_amp_noise.input_psd)
        thermal = np.interp(50e3, mic_amp_noise.freqs, mic_amp_noise.input_psd)
        ratio = (psd10 - thermal) / max(psd100 - thermal, 1e-30)
        assert 5.0 < ratio < 20.0

    def test_input_devices_dominate_thermal_floor(self, mic_amp_noise):
        """Sec. 3.2: T1..T4 should be the largest single MOS contributor."""
        ranked = mic_amp_noise.top_contributors(50e3, 20)
        mos_entries = [d for d, mech, _ in ranked if d.startswith("t")]
        assert mos_entries[0] in ("t1", "t2", "t3", "t4")

    def test_gain_matches_code(self, mic_amp_noise):
        assert np.interp(1e3, mic_amp_noise.freqs, mic_amp_noise.gain) == pytest.approx(
            100.0, rel=0.02
        )

    def test_contribution_fraction_api(self, mic_amp_noise):
        frac_inputs = sum(
            mic_amp_noise.contribution_fraction(name) for name in ("t1", "t2", "t3", "t4")
        )
        assert 0.1 < frac_inputs < 0.9
