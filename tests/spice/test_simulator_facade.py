"""The Simulator facade and frequency-grid helpers."""

import numpy as np
import pytest

from repro.spice import Circuit, Sine
from repro.spice.analysis import Simulator, log_freqs


@pytest.fixture
def rc_sim():
    ckt = Circuit("rc")
    ckt.vsource("vin", "a", "gnd", dc=0.5, ac=1.0,
                wave=Sine(offset=0.5, amplitude=0.2, freq=1e3))
    ckt.resistor("r", "a", "b", 1e3)
    ckt.capacitor("c", "b", "gnd", 159.154943e-9)
    return Simulator(ckt)


class TestLogFreqs:
    def test_includes_both_edges(self):
        grid = log_freqs(10.0, 1e3, 10)
        assert grid[0] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(1e3)

    def test_points_per_decade(self):
        grid = log_freqs(1.0, 1e3, 10)
        assert len(grid) == 31

    def test_validates_range(self):
        with pytest.raises(ValueError):
            log_freqs(0.0, 1e3)
        with pytest.raises(ValueError):
            log_freqs(1e3, 10.0)


class TestSimulator:
    def test_op_cached(self, rc_sim):
        op1 = rc_sim.op()
        op2 = rc_sim.op()
        assert op1 is op2
        assert rc_sim.op(recompute=True) is not op1

    def test_invalidate_clears_caches(self, rc_sim):
        op1 = rc_sim.op()
        rc_sim.invalidate()
        assert rc_sim.op() is not op1

    def test_gain_at_pole(self, rc_sim):
        assert rc_sim.gain_at(1e3, "b") == pytest.approx(1 / np.sqrt(2), rel=1e-4)

    def test_transfer_matches_ac(self, rc_sim):
        freqs = np.array([100.0, 1e3])
        h = rc_sim.transfer(freqs, "b")
        ac = rc_sim.ac(freqs)
        assert np.allclose(h, ac.v("b"))

    def test_noise_through_facade(self, rc_sim):
        nr = rc_sim.noise(np.array([1e3]), "b")
        assert nr.output_psd[0] > 0.0

    def test_transient_waveform(self, rc_sim):
        wave = rc_sim.transient_waveform(3e-3, 2e-6, "b")
        # sine about the 0.5 V DC point, attenuated ~0.707 at the pole
        assert wave.mean() == pytest.approx(0.5, abs=0.02)
        comp = abs(wave.last_cycles(1e3, 2).fourier_component(1e3))
        assert comp == pytest.approx(0.2 / np.sqrt(2), rel=0.03)

    def test_system_reused(self, rc_sim):
        assert rc_sim.system is rc_sim.system
