"""Engine degradation events and solver-health forensics.

Every silent numeric fallback in the DC/AC solvers must leave a
retrievable trace: a reason string on the operating point
(``op.latch_reason`` / ``op.health()``), a latch reason on the
small-signal context (``ctx.latch_reasons()``), and — when the event
log is armed — a structured event naming the circuit, the residual and
(for non-convergence) a condition estimate.
"""

import numpy as np
import pytest

import repro.spice.dc as dc_mod
import repro.spice.linsolve as linsolve
from repro.circuits.micamp import build_mic_amp
from repro.obs.events import EventLog, deactivate
from repro.spice import Circuit
from repro.spice.dc import ConvergenceError, NewtonOptions, dc_operating_point
from repro.spice.mna import MnaSystem


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    deactivate()


def _unsolvable(tech):
    """Conflicting current sources: no DC solution within the supplies."""
    ckt = Circuit("bad")
    ckt.vsource("vdd", "vdd", "gnd", dc=2.6)
    ckt.isource("i1", "vdd", "d1", dc=100e-6)
    ckt.mosfet("mp1", "d1", "d1", "vdd", "vdd", tech.pmos, 100e-6, 2e-6)
    return ckt


class TestHealthSidecar:
    def test_converged_solve_reports_health(self, mic_amp_op):
        health = mic_amp_op.health()
        assert health["strategy"] == "newton"
        assert health["iterations"] >= 1
        assert health["worst_resid"] is not None
        assert health["worst_resid"] < 1e-6
        assert "latch_reason" not in health

    def test_dense_latch_reason_retrievable(self, tech, monkeypatch):
        monkeypatch.setattr(MnaSystem, "sparse_threshold", 1)
        monkeypatch.setattr(dc_mod, "_sparse_newton_step",
                            lambda *a, **k: None)
        log = EventLog()
        with log.activate():
            op = dc_operating_point(build_mic_amp(tech, gain_code=5).circuit)
        assert op.latch_reason is not None
        assert "sparse step rejected at iteration 1" in op.latch_reason
        assert op.health()["latch_reason"] == op.latch_reason
        (latch,) = log.events(name="dc.dense_latch")
        assert latch["severity"] == "warn"
        assert latch["fields"]["reason"] == op.latch_reason
        assert latch["fields"]["iteration"] == 1

    def test_healthy_solve_has_no_latch(self, mic_amp_op):
        assert mic_amp_op.latch_reason is None


class TestEscalationEvents:
    def test_nonconvergence_emits_forensics(self, tech):
        log = EventLog()
        with log.activate():
            with pytest.raises(ConvergenceError):
                dc_operating_point(_unsolvable(tech),
                                   options=NewtonOptions(max_iterations=40))
        escalations = log.events(name="dc.strategy_escalation")
        assert escalations, "strategy ladder climbed without events"
        first = escalations[0]
        assert first["fields"]["from_strategy"] == "newton"
        assert first["fields"]["to_strategy"] == "gmin-stepping"
        assert isinstance(first["fields"]["resid_norm"], float)
        failures = log.events(name="dc.nonconvergence", severity="error")
        assert failures, "non-convergence never recorded"
        assert failures[-1]["fields"]["circuit"] == "bad"
        # The cheap 1-norm condition estimate rode along (it may be
        # None only if LAPACK refused the factorization).
        assert "cond1_est" in failures[-1]["fields"]

    def test_disarmed_solve_emits_nothing_and_still_raises(self, tech):
        with pytest.raises(ConvergenceError):
            dc_operating_point(_unsolvable(tech),
                               options=NewtonOptions(max_iterations=40))


class TestCondEstimate:
    def test_well_conditioned_near_one(self, mic_amp_op):
        system = mic_amp_op.system
        est = system.cond1_estimate(mic_amp_op.x, system.rhs_dc())
        assert est is not None
        assert est >= 1.0

    def test_garbage_input_returns_none(self, mic_amp_op):
        system = mic_amp_op.system
        x = np.full_like(mic_amp_op.x, np.nan)
        assert system.cond1_estimate(x, system.rhs_dc()) is None


class TestLinsolveLatches:
    def _sparse_ctx(self, tech, monkeypatch):
        monkeypatch.setattr(MnaSystem, "sparse_threshold", 1)
        op = dc_operating_point(build_mic_amp(tech, gain_code=5).circuit)
        return op, op.small_signal()

    def test_sparse_rejection_latches_with_reason(self, tech, monkeypatch):
        op, ctx = self._sparse_ctx(tech, monkeypatch)
        monkeypatch.setattr(linsolve, "SPECTRAL_RESIDUAL_TOL", -1.0)
        log = EventLog()
        freqs = np.logspace(1, 5, 8)
        with log.activate():
            fwd, _ = ctx.solve(freqs, rhs=ctx.rhs_ac())
        assert fwd is not None  # dense ladder still served the answer
        reasons = ctx.latch_reasons()
        assert "rejected on scaled residual" in reasons["sparse"]
        (latch,) = log.events(name="linsolve.sparse_dead_latch")
        assert latch["fields"]["reason"] == reasons["sparse"]
        assert "resid" in latch["fields"]
        # Health sidecar folds the context latches in.
        assert op.health()["small_signal_latches"] == reasons

    def test_splu_failure_latches(self, tech, monkeypatch):
        _, ctx = self._sparse_ctx(tech, monkeypatch)

        def broken_splu(a):
            raise RuntimeError("Factor is exactly singular")

        import scipy.sparse.linalg

        monkeypatch.setattr(scipy.sparse.linalg, "splu", broken_splu)
        log = EventLog()
        with log.activate():
            fwd, _ = ctx.solve(np.logspace(1, 5, 8), rhs=ctx.rhs_ac())
        assert fwd is not None
        assert "splu factorization failed" in ctx.latch_reasons()["sparse"]
        assert log.events(name="linsolve.sparse_dead_latch")

    def test_spectral_rejection_event_carries_residual(
            self, mic_amp_40db, monkeypatch):
        op = dc_operating_point(mic_amp_40db.circuit)
        ctx = op.small_signal()
        b = ctx.rhs_ac()
        assert ctx.spectral() is not None
        monkeypatch.setattr(linsolve, "SPECTRAL_RESIDUAL_TOL", -1.0)
        log = EventLog()
        freqs = np.logspace(1, 6, 24)
        with log.activate():
            ctx.solve(freqs, rhs=b)
        events = log.events(name="linsolve.spectral_rejected")
        assert events, "spectral rejection never recorded"
        assert events[0]["fields"]["n_freqs"] == 24
        assert events[0]["fields"]["resid"] > 0.0

    def test_healthy_context_reports_no_latches(self, mic_amp_op):
        ctx = mic_amp_op.small_signal()
        ctx.solve(np.logspace(1, 5, 8), rhs=ctx.rhs_ac())
        assert ctx.latch_reasons() == {}
