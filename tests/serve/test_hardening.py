"""Serve-stack hardening satellites: client transport retries, the
HTTP handler's last-resort guard, and journal-aware retention.

The chaos scenarios proper (timeouts, watchdog, degradation, journal
torture) live in ``tests/faults/test_serve_faults.py``; these tests pin
the smaller robustness knobs that need no fault injection.
"""

import socket
import threading

import pytest

from repro.serve import CharacterizationService, ServeClient, ServeError
from repro.serve import jobs as J
from repro.serve.api import serve_background


class FlappingServer:
    """A raw TCP listener that slams the first ``flaps`` connections
    shut before speaking, then answers every request with a canned
    health document — the shape of a service mid-restart."""

    BODY = b'{"status": "ok"}\n'
    RESPONSE = (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(BODY)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + BODY)

    def __init__(self, flaps: int) -> None:
        self.flaps = flaps
        self.connections = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.flaps:
                conn.close()                       # connection reset
                continue
            try:
                conn.recv(65536)                   # drain the request
                conn.sendall(self.RESPONSE)
            finally:
                conn.close()

    def close(self) -> None:
        self._sock.close()


class TestClientRetries:
    def test_get_rides_through_flapping_connections(self):
        server = FlappingServer(flaps=2)
        try:
            client = ServeClient(f"http://127.0.0.1:{server.port}",
                                 retries=4, backoff=0.01)
            assert client.health() == {"status": "ok"}
            assert server.connections == 3         # 2 resets + 1 success
        finally:
            server.close()

    def test_retries_zero_disables_the_ride_through(self):
        server = FlappingServer(flaps=1)
        try:
            client = ServeClient(f"http://127.0.0.1:{server.port}",
                                 retries=0)
            with pytest.raises(ServeError) as excinfo:
                client.health()
            assert excinfo.value.status == 0
            assert server.connections == 1         # exactly one attempt
        finally:
            server.close()

    def test_exhausted_retries_surface_the_transport_error(self):
        server = FlappingServer(flaps=100)
        try:
            client = ServeClient(f"http://127.0.0.1:{server.port}",
                                 retries=2, backoff=0.01)
            with pytest.raises(ServeError) as excinfo:
                client.metrics()
            assert excinfo.value.status == 0
            assert server.connections == 3         # 1 try + 2 retries
        finally:
            server.close()

    def test_posts_are_never_retried(self):
        server = FlappingServer(flaps=100)
        try:
            client = ServeClient(f"http://127.0.0.1:{server.port}",
                                 retries=4, backoff=0.01)
            with pytest.raises(ServeError):
                client.submit("campaign", {"builder": "bias"})
            assert server.connections == 1         # not idempotent: one shot
        finally:
            server.close()

    def test_http_errors_are_not_transport_errors(self):
        """A real HTTP 404 must not be retried — the server answered."""
        service = CharacterizationService(workers=1, watchdog_interval=0)
        server, _thread = serve_background(service)
        try:
            port = server.server_address[1]
            client = ServeClient(f"http://127.0.0.1:{port}",
                                 retries=3, backoff=0.01)
            before = service.metrics.get("http_requests")
            with pytest.raises(ServeError) as excinfo:
                client.job("nonexistent0")
            assert excinfo.value.status == 404
            assert service.metrics.get("http_requests") == before + 1
        finally:
            server.shutdown()
            service.stop()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServeClient("http://127.0.0.1:1", retries=-1)


class TestRetentionWithJournal:
    def test_constructor_restore_respects_the_cap(self, tmp_path):
        """A journal holding more terminal jobs than ``max_jobs`` must
        evict down to the cap at restore time, oldest first."""
        q = J.JobQueue(journal_dir=tmp_path, max_jobs=10)
        for i in range(5):
            job = J.Job(id=f"job{i:09d}", kind="campaign", payload={},
                        fingerprint=f"fp{i}", state=J.DONE)
            job.created_at = job.finished_at = 1000.0 + i
            q.register(job)
        assert len(q) == 5

        restored = J.JobQueue(journal_dir=tmp_path, max_jobs=2)
        assert len(restored) == 2
        assert restored.get("job000000004") is not None   # newest kept
        assert restored.get("job000000000") is None       # oldest gone
        # eviction also pruned the journal files themselves
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_pending_jobs_survive_cap_pressure_at_restore(self, tmp_path):
        q = J.JobQueue(journal_dir=tmp_path, max_jobs=10)
        done = J.Job(id="done00000000", kind="campaign", payload={},
                     fingerprint="fp-done", state=J.DONE)
        done.created_at = done.finished_at = 1000.0
        q.register(done)
        live = J.Job(id="live00000000", kind="campaign", payload={},
                     fingerprint="fp-live")
        live.created_at = 1001.0
        q.submit(live)

        restored = J.JobQueue(journal_dir=tmp_path, max_jobs=1)
        # the cap evicts the terminal job, never the restorable work
        assert restored.get("live00000000") is not None
        assert restored.get("done00000000") is None
        assert restored.depth() == 1
