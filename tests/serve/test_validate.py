"""The shared request validator: one schema, one-line failures."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.optimize import RobustSettings
from repro.serve.validate import (
    SpecValidationError,
    campaign_spec_from_dict,
    load_request_file,
    optimize_request_from_dict,
    parse_request,
)


class TestCampaignRequests:
    def test_minimal_request_uses_spec_defaults(self):
        spec = campaign_spec_from_dict({})
        assert spec == CampaignSpec()

    def test_full_request_matches_direct_construction(self):
        payload = {
            "builder": "micamp",
            "corners": ["tt", "ss"],
            "temps_c": [25.0],
            "supplies": [None, 3.0],
            "seeds": [None, 0],
            "gain_codes": [5],
            "measurements": ["offset_v", "iq_ma"],
        }
        spec = campaign_spec_from_dict(payload)
        assert spec == CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
            supplies=(None, 3.0), seeds=(None, 0), gain_codes=(5,),
            measurements=("offset_v", "iq_ma"),
        )

    def test_corners_all_expands_registry(self):
        from repro.process.corners import CORNERS

        spec = campaign_spec_from_dict({"corners": "all"})
        assert spec.corners == tuple(CORNERS)

    def test_builder_kwargs_object(self):
        spec = campaign_spec_from_dict(
            {"builder": "micamp_sized", "builder_kwargs": {"i_in_ua": 320.0}})
        assert ("i_in_ua", 320.0) in spec.builder_kwargs

    @pytest.mark.parametrize("payload, fragment", [
        ([1, 2], "must be a JSON object"),
        ({"nope": 1}, "unknown campaign request key(s) ['nope']"),
        ({"builder": 7}, "'builder' must be a string"),
        ({"corners": "tt"}, "'corners' must be an array"),
        ({"corners": ["xx"]}, "unknown corners"),
        ({"temps_c": []}, "must not be empty"),
        ({"measurements": ["bogus"]}, "unknown measurements"),
        ({"builder_kwargs": [1]}, "'builder_kwargs' must be an object"),
        ({"builder": "nope"}, "unknown builder"),
    ])
    def test_failures_are_one_line(self, payload, fragment):
        with pytest.raises(SpecValidationError) as err:
            campaign_spec_from_dict(payload)
        message = str(err.value)
        assert fragment in message
        assert "\n" not in message


class TestOptimizeRequests:
    def test_defaults(self):
        out = optimize_request_from_dict({})
        assert out == {"budget": 150, "seed": 2026,
                       "mode": "feasibility", "robust": None}

    def test_json_integer_axes_normalize_to_one_fingerprint(self):
        """JSON `25` and CLI-parsed `25.0` must hash identically —
        otherwise identical requests would neither coalesce nor share
        design-eval store keys."""
        from repro.store.keys import canonical_payload

        a = optimize_request_from_dict(
            {"robust": {"temps_c": [25], "supplies": [3]}})["robust"]
        b = optimize_request_from_dict(
            {"robust": {"temps_c": [25.0], "supplies": [3.0]}})["robust"]
        assert a == b
        assert canonical_payload(a) == canonical_payload(b)
        assert a.temps_c == (25.0,) and a.supplies == (3.0,)

    def test_robust_grid_parsed(self):
        out = optimize_request_from_dict({
            "budget": 10, "seed": 7, "mode": "penalty",
            "robust": {"corners": ["tt", "ss"], "temps_c": [25.0],
                       "seeds": [None, 0]},
        })
        assert out["budget"] == 10 and out["mode"] == "penalty"
        assert out["robust"] == RobustSettings(
            corners=("tt", "ss"), temps_c=(25.0,), seeds=(None, 0))

    @pytest.mark.parametrize("payload, fragment", [
        ({"budget": "big"}, "'budget' must be an integer"),
        ({"budget": True}, "'budget' must be an integer"),
        ({"budget": 1}, "budget must be >= 2"),
        ({"mode": "nope"}, "mode must be"),
        ({"extra": 1}, "unknown optimize request key(s)"),
        ({"robust": {"corners": "tt"}}, "'corners' must be an array"),
        ({"robust": {"weird": []}}, "unknown robust key(s)"),
        ({"robust": {"corners": ["zz"]}}, "unknown corners"),
    ])
    def test_failures_are_one_line(self, payload, fragment):
        with pytest.raises(SpecValidationError) as err:
            optimize_request_from_dict(payload)
        assert fragment in str(err.value)
        assert "\n" not in str(err.value)


class TestDispatchAndFiles:
    def test_parse_request_dispatch(self):
        assert isinstance(parse_request("campaign", {}), CampaignSpec)
        assert parse_request("optimize", {})["budget"] == 150
        with pytest.raises(SpecValidationError, match="unknown request kind"):
            parse_request("table1", {})

    def test_load_request_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"builder": "bias",
                                    "measurements": ["bias_current_ua"]}))
        spec = load_request_file(path, "campaign")
        assert spec.builder == "bias"

    def test_load_request_file_bad_json_is_one_line(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"builder": "bias",')
        with pytest.raises(SpecValidationError, match="not valid JSON") as err:
            load_request_file(path, "campaign")
        assert "\n" not in str(err.value)

    def test_load_request_file_missing(self, tmp_path):
        with pytest.raises(SpecValidationError, match="cannot read"):
            load_request_file(tmp_path / "absent.json", "campaign")
