"""ServiceMetrics and the service's observability surface.

Pins the satellite contracts of the obs PR: the registry is race-free
under N-thread increment/observe storms with consistent mid-storm
snapshots; ``/v1/metrics`` carries the namespaced ``store.*`` /
``journal.*`` sections plus per-route latency quantiles; the
Prometheus exposition parses with monotone cumulative buckets; and the
trace route answers only while tracing is armed.
"""

import threading

import pytest

from repro.obs.metrics import parse_prometheus
from repro.obs.trace import Tracer
from repro.serve.service import CharacterizationService, ServiceMetrics
from repro.store import ResultStore

#: A tiny, fast campaign: 2 bias-block units, one measurement.
PAYLOAD = {"builder": "bias", "corners": ["tt"], "temps_c": [25.0, 85.0],
           "measurements": ["bias_current_ua"]}


@pytest.fixture
def service(tmp_path):
    svc = CharacterizationService(
        store=ResultStore(tmp_path / "store"),
        journal_dir=tmp_path / "journal", workers=2).start()
    yield svc
    svc.stop()


class TestServiceMetricsConcurrency:
    N_THREADS = 8
    PER_THREAD = 2000

    def _storm(self, work):
        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_concurrent_increments_lose_nothing(self):
        metrics = ServiceMetrics()
        self._storm(lambda: [metrics.incr("hits")
                             for _ in range(self.PER_THREAD)])
        assert metrics.get("hits") == self.N_THREADS * self.PER_THREAD

    def test_concurrent_observes_lose_nothing(self):
        metrics = ServiceMetrics()
        self._storm(lambda: [metrics.observe("lat", 0.01)
                             for _ in range(self.PER_THREAD)])
        total = self.N_THREADS * self.PER_THREAD
        snap = metrics.latency_snapshot()["lat"]
        assert snap["count"] == total
        assert snap["sum"] == pytest.approx(total * 0.01)

    def test_mid_storm_snapshots_are_consistent(self):
        """Snapshots taken while writers run must be internally
        consistent: cumulative buckets monotone, ending at the count."""
        metrics = ServiceMetrics()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.incr("jobs_done")
                metrics.observe("lat", 0.005)
                metrics.set_gauge("queue_depth", 1.0)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                hist = metrics.histogram("lat")
                if hist is None:
                    continue
                snap = hist.snapshot()
                counts = [b["count"] for b in snap["buckets"]]
                assert counts == sorted(counts)
                assert counts[-1] == snap["count"]
                metrics.snapshot()
                metrics.gauges_snapshot()
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_quantiles_nan_maps_to_none_in_latency_snapshot(self):
        metrics = ServiceMetrics()
        metrics.observe("lat", 0.01)
        snap = metrics.latency_snapshot()["lat"]
        assert set(snap) == {"count", "sum", "p50", "p95", "p99"}
        assert all(snap[k] is not None for k in ("p50", "p95", "p99"))


class TestMetricsSnapshotSchema:
    def test_store_and_journal_sections_present(self, service):
        job = service.submit_campaign(PAYLOAD)
        assert job.wait(timeout=60)
        snap = service.metrics_snapshot()
        # namespaced store health (the backend's own fault_stats plus
        # attachment/degradation state)
        assert snap["store.attached"] is True
        assert snap["store.degraded"] is False
        assert snap["store.entries"] >= 2
        for name in service.store.fault_stats():
            assert f"store.{name}" in snap
        # namespaced journal counters
        assert snap["journal.enabled"] is True
        assert snap["journal.recovered"] == 0
        assert snap["journal.corrupt"] == 0

    def test_events_section_zeroed_while_disarmed(self, service):
        snap = service.metrics_snapshot()
        assert snap["events.armed"] is False
        for key in ("events.info", "events.warn", "events.error",
                    "events.recorded", "events.dropped"):
            assert snap[key] == 0, key

    def test_events_section_counts_while_armed(self, service):
        from repro.obs.events import EventLog, event

        log = EventLog()
        with log.activate():
            event("serve.test_event", "error", detail="x")
            event("serve.test_event", "info")
            snap = service.metrics_snapshot()
        assert snap["events.armed"] is True
        assert snap["events.error"] == 1
        assert snap["events.info"] == 1
        assert snap["events.warn"] == 0
        assert snap["events.recorded"] == 2
        assert snap["events.dropped"] == 0

    def test_gauges_and_latency_sections_present(self, service):
        job = service.submit_campaign(PAYLOAD)
        assert job.wait(timeout=60)
        snap = service.metrics_snapshot()
        for gauge in ("queue_depth", "jobs", "workers_busy", "store_entries"):
            assert gauge in snap["gauges"], gauge
        lat = snap["latency"]
        assert lat["job.campaign_s"]["count"] == 1
        assert lat["job.queue_wait_s"]["count"] == 1
        assert lat["job.campaign_s"]["p50"] is not None

    def test_counters_survive_unchanged(self, service):
        service.submit_campaign(PAYLOAD).wait(timeout=60)
        snap = service.metrics_snapshot()
        assert snap["counters"]["jobs_done"] == 1
        assert snap["counters"]["units_executed"] == 2

    def test_detached_store_reports_absent(self, tmp_path):
        svc = CharacterizationService(workers=1).start()
        try:
            snap = svc.metrics_snapshot()
            assert snap["store.attached"] is False
            assert "store.entries" not in snap
            assert snap["journal.enabled"] is False
        finally:
            svc.stop()


class TestPrometheusEndpoint:
    def test_exposition_parses_with_monotone_buckets(self, service):
        service.submit_campaign(PAYLOAD).wait(timeout=60)
        series = parse_prometheus(service.prometheus_text())
        assert series["repro_jobs_done_total"]["type"] == "counter"
        assert series["repro_queue_depth"]["type"] == "gauge"
        hist = series["repro_job_campaign_s"]
        assert hist["type"] == "histogram"
        counts = [v for labels, v in hist["samples"] if "_bucket" in labels]
        assert counts and counts == sorted(counts)
        assert ("repro_job_campaign_s_count", 1.0) in hist["samples"]
        # store/journal state lands as gauges (booleans as 0/1)
        assert series["repro_store_attached"]["samples"][0][1] == 1.0
        assert series["repro_journal_enabled"]["samples"][0][1] == 1.0

    def test_events_severity_counters_round_trip(self, service):
        from repro.obs.events import EventLog, event

        # Disarmed: the series exist and are zero (schema stability).
        series = parse_prometheus(service.prometheus_text())
        for name in ("repro_events_armed", "repro_events_info",
                     "repro_events_warn", "repro_events_error",
                     "repro_events_recorded", "repro_events_dropped"):
            assert series[name]["type"] == "gauge", name
            assert series[name]["samples"][0][1] == 0.0, name
        # Armed: severity tallies land in the exposition.
        log = EventLog()
        with log.activate():
            event("serve.test_event", "warn")
            event("serve.test_event", "error")
            series = parse_prometheus(service.prometheus_text())
        assert series["repro_events_armed"]["samples"][0][1] == 1.0
        assert series["repro_events_warn"]["samples"][0][1] == 1.0
        assert series["repro_events_error"]["samples"][0][1] == 1.0
        assert series["repro_events_recorded"]["samples"][0][1] == 2.0

    def test_every_series_has_type(self, service):
        for name, entry in parse_prometheus(
                service.prometheus_text()).items():
            assert entry["type"] in ("counter", "gauge", "histogram"), name


class TestJobTrace:
    def test_disarmed_job_has_no_trace(self, service):
        job = service.submit_campaign(PAYLOAD)
        assert job.wait(timeout=60)
        assert job.trace_id is None
        assert service.job_trace(job) is None

    def test_armed_job_exposes_span_tree(self, service):
        tracer = Tracer()
        with tracer.activate():
            job = service.submit_campaign(PAYLOAD)
            assert job.wait(timeout=60)
            assert job.trace_id is not None
            trace = service.job_trace(job)
        assert trace["trace_id"] == job.trace_id
        names = {s["name"] for s in trace["spans"]}
        assert "serve.job" in names and "campaign.run" in names
        assert all(s["trace_id"] == job.trace_id for s in trace["spans"])

    def test_trace_id_survives_in_view(self, service):
        tracer = Tracer()
        with tracer.activate():
            job = service.submit_campaign(PAYLOAD)
            assert job.wait(timeout=60)
        assert job.view()["trace_id"] == job.trace_id
