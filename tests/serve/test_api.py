"""The HTTP shell: routes, status codes, and the client driving them."""

import json
import urllib.error
import urllib.request

import pytest

from repro.campaign import run_campaign
from repro.serve import (
    CharacterizationService,
    ServeClient,
    ServeError,
    serve_background,
)
from repro.serve.validate import campaign_spec_from_dict
from repro.store import ResultStore

PAYLOAD = {"builder": "bias", "corners": ["tt"], "temps_c": [25.0, 85.0],
           "measurements": ["bias_current_ua"]}


@pytest.fixture
def client(tmp_path):
    service = CharacterizationService(store=ResultStore(tmp_path / "store"),
                                      workers=2)
    server, _thread = serve_background(service)
    host, port = server.server_address[:2]
    yield ServeClient(f"http://{host}:{port}")
    server.shutdown()
    service.stop()


class TestLifecycleOverHttp:
    def test_health_and_metrics(self, client):
        health = client.health()
        assert health["status"] == "ok" and health["workers"] == 2
        metrics = client.metrics()
        assert "counters" in metrics and "queue_depth" in metrics

    def test_submit_poll_result_byte_identical(self, client):
        view = client.submit("campaign", PAYLOAD)
        assert view["state"] in ("queued", "running", "done")
        final = client.wait(view["id"], timeout=60)
        assert final["state"] == "done"
        assert final["progress"] == {"units_done": 2, "units_total": 2}

        body = client.result_bytes(view["id"])
        direct = run_campaign(campaign_spec_from_dict(PAYLOAD))
        assert body.decode("utf-8") == direct.to_json() + "\n"

    def test_warm_resubmission_answers_200_done(self, client):
        client.run("campaign", PAYLOAD, timeout=60)
        view = client.submit("campaign", PAYLOAD)
        assert view["state"] == "done" and view["warm"]
        assert client.metrics()["counters"]["warm_hits"] == 1

    def test_result_pagination(self, client):
        view = client.run("campaign", PAYLOAD, timeout=60)
        page = client.result_page(view["id"], offset=1, limit=1)
        assert page["total"] == 2
        assert page["columns"]["temp_c"] == [85.0]
        assert len(page["columns"]["corner"]) == 1

    def test_jobs_listing(self, client):
        view = client.run("campaign", PAYLOAD, timeout=60)
        jobs = client.jobs()
        assert view["id"] in {j["id"] for j in jobs}

    def test_result_of_unfinished_job_is_202_view(self, client):
        # a queued-or-running job answers its status view, not an error
        view = client.submit("campaign", dict(PAYLOAD, seeds=[0, 1, 2]))
        status, body = client._request("GET", f"/v1/jobs/{view['id']}/result")
        payload = json.loads(body)
        if status == 202:
            assert payload["state"] in ("queued", "running")
        else:                       # tiny campaign may already be done
            assert status == 200
        client.wait(view["id"], timeout=60)


class TestEventsRoute:
    def test_disarmed_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client._request("GET", "/v1/events")
        assert err.value.status == 404
        assert "disarmed" in str(err.value)

    def test_armed_serves_newest_events(self, client):
        from repro.obs.events import EventLog, deactivate, event

        log = EventLog()
        try:
            with log.activate():
                event("serve.test_event", "error", detail="boom")
                status, body = client._request("GET",
                                               "/v1/events?limit=10")
        finally:
            deactivate()
        assert status == 200
        doc = json.loads(body)
        assert doc["recorded"] == 1
        assert doc["by_severity"]["error"] == 1
        (got,) = doc["events"]
        assert got["name"] == "serve.test_event"
        assert got["fields"] == {"detail": "boom"}

    def test_severity_filter_and_bad_limit(self, client):
        from repro.obs.events import EventLog, deactivate, event

        log = EventLog()
        try:
            with log.activate():
                event("a", "info")
                event("b", "error")
                status, body = client._request(
                    "GET", "/v1/events?severity=error")
                assert status == 200
                assert [e["name"] for e in
                        json.loads(body)["events"]] == ["b"]
                with pytest.raises(ServeError) as err:
                    client._request("GET", "/v1/events?limit=nope")
                assert err.value.status == 400
        finally:
            deactivate()


class TestErrorShell:
    def test_malformed_body_is_400_one_line(self, client):
        with pytest.raises(ServeError) as err:
            client.submit("campaign", {"corners": "tt"})
        assert err.value.status == 400
        assert "\n" not in err.value.message

    def test_invalid_json_body_is_400(self, client):
        url = f"{client.base_url}/v1/campaigns"
        req = urllib.request.Request(url, data=b"{nope", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400
        assert "invalid JSON body" in json.loads(err.value.read())["error"]

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.job("deadbeef0000")
        assert err.value.status == 404

    def test_unknown_routes_are_404(self, client):
        for method, path in (("GET", "/v2/jobs"), ("POST", "/v1/nope")):
            with pytest.raises(ServeError) as err:
                client._request(method, path, {} if method == "POST" else None)
            assert err.value.status == 404

    def test_http_errors_counted(self, client):
        with pytest.raises(ServeError):
            client.job("nope")
        assert client.metrics()["counters"]["http_errors"] >= 1

    def test_unreachable_server_raises_serve_error(self):
        dead = ServeClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServeError) as err:
            dead.health()
        assert err.value.status == 0

    def test_premature_result_fetch_raises_not_returns_view(self, tmp_path):
        """result_bytes on a non-terminal job must raise, never hand the
        202 status view back as if it were the result document."""
        from repro.serve import CharacterizationService
        from repro.serve.api import ServeServer
        import threading

        service = CharacterizationService(store=None, workers=1)  # no start:
        server = ServeServer(("127.0.0.1", 0), service)   # job stays queued
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            c = ServeClient(f"http://{host}:{port}")
            view = c.submit("campaign", PAYLOAD)
            assert view["state"] == "queued"
            with pytest.raises(ServeError) as err:
                c.result_bytes(view["id"])
            assert err.value.status == 202
            assert "no result yet" in err.value.message
        finally:
            server.shutdown()
            service.stop()

    def test_keepalive_survives_post_error_paths(self, client):
        """On one persistent HTTP/1.1 connection, an errored POST (404
        route, bad Content-Length) must not desync the stream for the
        next, valid request."""
        import http.client

        host, port = client.base_url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            # unknown route with a body: body must be drained
            conn.request("POST", "/v1/nope", body=b'{"x": 1}')
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200                  # stream intact
            assert json.loads(resp.read())["status"] == "ok"

            # garbage Content-Length: 400, not a server-side traceback
            conn.putrequest("POST", "/v1/campaigns")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert "Content-Length" in json.loads(resp.read())["error"]
        finally:
            conn.close()
        # and the server still serves fresh connections
        assert client.health()["status"] == "ok"
