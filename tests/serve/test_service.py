"""Service semantics: byte-identity, warm hits, exactly-once execution.

These tests drive :class:`CharacterizationService` in-process (no HTTP)
so the guarantees are pinned where they live; ``test_api.py`` re-checks
the thin HTTP shell on top.
"""

import threading

import pytest

from repro.campaign import run_campaign
from repro.serve import CharacterizationService, SpecValidationError
from repro.serve import jobs as J
from repro.serve.validate import campaign_spec_from_dict
from repro.store import ResultStore

#: A tiny, fast campaign: 2 bias-block units, one measurement.
PAYLOAD = {"builder": "bias", "corners": ["tt"], "temps_c": [25.0, 85.0],
           "measurements": ["bias_current_ua"]}


@pytest.fixture
def service(tmp_path):
    svc = CharacterizationService(store=ResultStore(tmp_path / "store"),
                                  workers=2).start()
    yield svc
    svc.stop()


class TestCampaignJobs:
    def test_served_result_is_byte_identical_to_direct_run(self, service):
        job = service.submit_campaign(PAYLOAD)
        assert job.wait(timeout=60)
        assert job.state == J.DONE

        direct = run_campaign(campaign_spec_from_dict(PAYLOAD))
        assert service.result_text(job) == direct.to_json() + "\n"
        assert job.result.data.tobytes() == direct.data.tobytes()

    def test_progress_reaches_total(self, service):
        job = service.submit_campaign(PAYLOAD)
        job.wait(timeout=60)
        assert job.progress == {"units_done": 2, "units_total": 2}

    def test_warm_resubmission_skips_queue_and_engine(self, service):
        first = service.submit_campaign(PAYLOAD)
        first.wait(timeout=60)
        executed = service.metrics.get("units_executed")

        warm = service.submit_campaign(PAYLOAD)
        assert warm.state == J.DONE and warm.warm
        assert warm.id != first.id
        assert service.metrics.get("warm_hits") == 1
        assert service.metrics.get("units_executed") == executed  # unchanged
        assert service.result_text(warm) == service.result_text(first)

    def test_axis_growth_reuses_overlap(self, service):
        service.submit_campaign(PAYLOAD).wait(timeout=60)
        grown = dict(PAYLOAD, temps_c=[25.0, 85.0, -20.0])
        job = service.submit_campaign(grown)
        job.wait(timeout=60)
        assert not job.warm                       # one unit was missing
        assert job.result.store_stats["reused_units"] == 2
        assert job.result.store_stats["executed_units"] == 1

    def test_malformed_payload_raises_before_any_job(self, service):
        with pytest.raises(SpecValidationError):
            service.submit_campaign({"corners": "tt"})
        assert len(service.queue) == 0

    def test_result_page_slices_rows(self, service):
        job = service.submit_campaign(PAYLOAD)
        job.wait(timeout=60)
        page = service.result_page(job, offset=1, limit=5)
        assert page["total"] == 2 and page["offset"] == 1
        assert page["columns"]["temp_c"] == [85.0]
        assert page["metrics"] == ["bias_current_ua"]
        with pytest.raises(SpecValidationError):
            service.result_page(job, offset=-1, limit=1)


class TestExactlyOnce:
    def test_concurrent_duplicates_execute_shared_units_once(self, tmp_path):
        """N simultaneous identical submissions -> one execution, one
        shared job, N-1 coalesced attaches — asserted via the service's
        execution counters, per the acceptance criteria."""
        svc = CharacterizationService(store=ResultStore(tmp_path / "s"),
                                      workers=3).start()
        try:
            n = 6
            jobs = [None] * n
            barrier = threading.Barrier(n)

            def submit(i):
                barrier.wait()
                jobs[i] = svc.submit_campaign(PAYLOAD)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for job in jobs:
                assert job.wait(timeout=60) and job.state == J.DONE

            # THE guarantee: across any interleaving, the campaign's
            # units were executed exactly once in total.
            spec = campaign_spec_from_dict(PAYLOAD)
            assert svc.metrics.get("units_executed") == spec.n_units
            # every submission that did not get its own job attached to
            # the in-flight execution; any that raced past a finished
            # winner was answered from the store (warm or zero-missing)
            distinct = {job.id for job in jobs}
            assert svc.metrics.get("coalesced") == n - len(distinct)
            texts = {svc.result_text(job) for job in jobs}
            assert len(texts) == 1
        finally:
            svc.stop()

    def test_sequential_duplicates_without_store_rerun(self, tmp_path):
        """Documented boundary: exactly-once across *sequential*
        duplicates needs the store; without one, each finished spec
        re-executes."""
        svc = CharacterizationService(store=None, workers=1).start()
        try:
            a = svc.submit_campaign(PAYLOAD)
            a.wait(timeout=60)
            b = svc.submit_campaign(PAYLOAD)
            b.wait(timeout=60)
            assert not b.warm
            assert svc.metrics.get("units_executed") == 4
        finally:
            svc.stop()


class TestOptimizeJobs:
    def test_optimize_job_runs_and_reports_progress(self, service):
        job = service.submit_optimize({"budget": 6, "seed": 7})
        assert job.wait(timeout=120)
        assert job.state == J.DONE, job.error
        assert job.progress == {"evaluations_done": 6, "budget": 6}
        text = service.result_text(job)
        assert '"best_params"' in text and '"pareto"' in text
        assert service.metrics.get("optimize_evaluations") == 6

    def test_optimize_pagination_rejected(self, service):
        job = service.submit_optimize({"budget": 6, "seed": 7})
        job.wait(timeout=120)
        with pytest.raises(SpecValidationError, match="campaign results"):
            service.result_page(job, 0, 10)

    def test_identical_optimize_requests_coalesce(self, tmp_path):
        svc = CharacterizationService(store=ResultStore(tmp_path / "s"),
                                      workers=1).start()
        try:
            blocker = svc.submit_campaign(PAYLOAD)  # occupies the worker
            a = svc.submit_optimize({"budget": 6, "seed": 9})
            b = svc.submit_optimize({"budget": 6, "seed": 9})
            c = svc.submit_optimize({"budget": 6, "seed": 10})
            assert b is a and c is not a
            assert svc.metrics.get("coalesced") == 1
            for job in (blocker, a, c):
                assert job.wait(timeout=120) and job.state == J.DONE
        finally:
            svc.stop()


class TestRestartRecovery:
    def test_done_campaign_result_recovered_from_store(self, tmp_path):
        store_root = tmp_path / "store"
        journal = tmp_path / "journal"
        svc = CharacterizationService(store=ResultStore(store_root),
                                      workers=1, journal_dir=journal).start()
        job = svc.submit_campaign(PAYLOAD)
        job.wait(timeout=60)
        text = svc.result_text(job)
        svc.stop()

        svc2 = CharacterizationService(store=ResultStore(store_root),
                                       workers=1, journal_dir=journal).start()
        try:
            restored = svc2.queue.get(job.id)
            assert restored is not None and restored.state == J.DONE
            assert restored.result is None         # results not journalled
            assert svc2.result_text(restored) == text  # warm reconstruction
        finally:
            svc2.stop()
