"""Job queue semantics: lifecycle, coalescing, journal recovery."""

import threading

import pytest

from repro.serve import jobs as J


def make_job(fp="fp-1", kind="campaign", payload=None):
    return J.Job(id=J.new_job_id(), kind=kind, payload=payload or {},
                 fingerprint=fp)


class TestLifecycle:
    def test_submit_next_finish(self):
        q = J.JobQueue()
        job, coalesced = q.submit(make_job())
        assert not coalesced and job.state == J.QUEUED
        assert q.depth() == 1

        picked = q.next_job(timeout=1.0)
        assert picked is job and picked.state == J.RUNNING
        assert picked.started_at is not None

        q.finish(job, J.DONE)
        assert job.state == J.DONE and job.terminal
        assert job.wait(timeout=1.0)
        assert q.get(job.id) is job

    def test_failed_state_carries_error(self):
        q = J.JobQueue()
        job, _ = q.submit(make_job())
        q.next_job(timeout=1.0)
        q.finish(job, J.FAILED, error="boom")
        assert job.state == J.FAILED and job.error == "boom"

    def test_finish_rejects_non_terminal(self):
        q = J.JobQueue()
        job, _ = q.submit(make_job())
        with pytest.raises(ValueError):
            q.finish(job, J.RUNNING)

    def test_register_requires_terminal(self):
        q = J.JobQueue()
        with pytest.raises(ValueError):
            q.register(make_job())
        warm = make_job()
        warm.state = J.DONE
        q.register(warm)
        assert q.get(warm.id) is warm and warm.wait(0)
        assert q.depth() == 0                  # never pending

    def test_close_unblocks_workers(self):
        q = J.JobQueue()
        got = []

        def worker():
            got.append(q.next_job())

        t = threading.Thread(target=worker)
        t.start()
        q.close()
        t.join(timeout=2.0)
        assert got == [None]
        with pytest.raises(RuntimeError, match="closed"):
            q.submit(make_job())

    def test_jobs_listing_newest_first(self):
        q = J.JobQueue()
        a, _ = q.submit(make_job("fp-a"))
        a.created_at -= 10.0
        b, _ = q.submit(make_job("fp-b"))
        assert q.jobs() == [b, a]
        assert len(q) == 2


class TestCoalescing:
    def test_identical_inflight_attaches(self):
        q = J.JobQueue()
        first, c1 = q.submit(make_job("same"))
        second, c2 = q.submit(make_job("same"))
        assert not c1 and c2
        assert second is first and first.attached == 1
        assert q.depth() == 1                  # one execution queued

    def test_running_job_still_coalesces(self):
        q = J.JobQueue()
        first, _ = q.submit(make_job("same"))
        q.next_job(timeout=1.0)                # now running
        twin, coalesced = q.submit(make_job("same"))
        assert coalesced and twin is first

    def test_finished_fingerprint_is_released(self):
        q = J.JobQueue()
        first, _ = q.submit(make_job("same"))
        q.next_job(timeout=1.0)
        q.finish(first, J.DONE)
        again, coalesced = q.submit(make_job("same"))
        assert not coalesced and again is not first

    def test_distinct_fingerprints_never_coalesce(self):
        q = J.JobQueue()
        a, _ = q.submit(make_job("fp-a"))
        b, coalesced = q.submit(make_job("fp-b"))
        assert not coalesced and b is not a


class TestRetentionCap:
    def _finished(self, q, fp):
        job, _ = q.submit(make_job(fp))
        q.next_job(timeout=1.0)
        q.finish(job, J.DONE)
        return job

    def test_oldest_terminal_jobs_evicted_past_cap(self):
        q = J.JobQueue(max_jobs=2)
        jobs = [self._finished(q, f"fp-{i}") for i in range(3)]
        a, _ = q.submit(make_job("fp-new"))          # 4th admission
        assert len(q) == 2
        assert q.get(jobs[0].id) is None             # oldest two gone
        assert q.get(jobs[1].id) is None
        assert q.get(jobs[2].id) is not None
        assert q.get(a.id) is not None

    def test_inflight_jobs_never_evicted(self):
        q = J.JobQueue(max_jobs=1)
        running, _ = q.submit(make_job("fp-r"))
        q.next_job(timeout=1.0)                      # running
        queued, _ = q.submit(make_job("fp-q"))
        assert len(q) == 2                           # cap exceeded, both kept
        assert q.get(running.id) is not None
        assert q.get(queued.id) is not None

    def test_eviction_removes_journal_file(self, tmp_path):
        q = J.JobQueue(journal_dir=tmp_path, max_jobs=1)
        old = self._finished(q, "fp-old")
        assert (tmp_path / f"{old.id}.json").exists()
        self._finished(q, "fp-new")
        assert not (tmp_path / f"{old.id}.json").exists()
        # a restarted queue therefore does not resurrect evicted jobs
        q2 = J.JobQueue(journal_dir=tmp_path, max_jobs=1)
        assert q2.get(old.id) is None and len(q2) == 1


class TestJournal:
    def test_terminal_jobs_survive_restart(self, tmp_path):
        q = J.JobQueue(journal_dir=tmp_path)
        job, _ = q.submit(make_job(payload={"builder": "bias"}))
        q.next_job(timeout=1.0)
        q.finish(job, J.DONE)

        q2 = J.JobQueue(journal_dir=tmp_path)
        restored = q2.get(job.id)
        assert restored is not None
        assert restored.state == J.DONE
        assert restored.payload == {"builder": "bias"}
        assert restored.wait(0)                # terminal: event pre-set
        assert q2.depth() == 0

    def test_interrupted_jobs_requeue(self, tmp_path):
        q = J.JobQueue(journal_dir=tmp_path)
        queued, _ = q.submit(make_job("fp-q"))
        running, _ = q.submit(make_job("fp-r"))
        assert q.next_job(timeout=1.0) is queued   # FIFO: fp-q first
        # process "dies" here: one running, one queued

        q2 = J.JobQueue(journal_dir=tmp_path)
        assert q2.depth() == 2                 # both re-admitted
        states = {j.fingerprint: j.state for j in q2.jobs()}
        assert states == {"fp-q": J.QUEUED, "fp-r": J.QUEUED}
        # and the coalescing index is live again
        _, coalesced = q2.submit(make_job("fp-q"))
        assert coalesced

    def test_torn_journal_file_is_skipped(self, tmp_path):
        q = J.JobQueue(journal_dir=tmp_path)
        job, _ = q.submit(make_job())
        (tmp_path / "torn.json").write_text('{"id": ')
        q2 = J.JobQueue(journal_dir=tmp_path)
        assert q2.get(job.id) is not None
        assert len(q2) == 1
