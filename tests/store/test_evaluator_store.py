"""Persistent CandidateEvaluator backend: resume across evaluators and
processes, stats accounting, objective-independent storage."""

import math

import numpy as np
import pytest

from repro.optimize import (
    CandidateEvaluator,
    mic_amp_design_space,
    mic_amp_objective,
    optimize_mic_amp,
)
from repro.process import CMOS12
from repro.store import ResultStore


@pytest.fixture(scope="module")
def space():
    return mic_amp_design_space()


def make_evaluator(store, **kwargs):
    return CandidateEvaluator(mic_amp_design_space(), mic_amp_objective(),
                              CMOS12, store=store, **kwargs)


class TestPersistentBackend:
    def test_second_evaluator_resumes(self, space, tmp_path):
        store = ResultStore(tmp_path / "s")
        x = space.default()

        first = make_evaluator(store)
        ev1 = first.evaluate(x)
        assert first.stats()["simulated"] == 1
        assert first.stats()["store_hits"] == 0

        second = make_evaluator(ResultStore(tmp_path / "s"))
        ev2 = second.evaluate(x)
        stats = second.stats()
        assert stats["simulated"] == 0 and stats["store_hits"] == 1
        assert ev2.metrics == ev1.metrics
        assert ev2.score == ev1.score
        assert ev2.feasible == ev1.feasible
        np.testing.assert_array_equal(ev2.x, ev1.x)

    def test_memory_memo_beats_store(self, space, tmp_path):
        evaluator = make_evaluator(ResultStore(tmp_path / "s"))
        x = space.default()
        evaluator.evaluate(x)
        evaluator.evaluate(x)
        stats = evaluator.stats()
        assert stats == {
            "evaluations": 2, "hits": 1, "misses": 1, "hit_rate": 0.5,
            "store_hits": 0, "store_misses": 1, "simulated": 1,
        }

    def test_stats_without_store(self, space):
        evaluator = CandidateEvaluator(space, mic_amp_objective(), CMOS12)
        evaluator.evaluate(space.default())
        stats = evaluator.stats()
        assert stats["store_hits"] == 0 and stats["simulated"] == 1

    def test_failed_candidate_persisted(self, space, tmp_path):
        """Infeasible-region failures (empty metrics + error string) are
        cached too: re-probing a dead corner costs a read, not a solve."""
        store = ResultStore(tmp_path / "s")
        bad = space.default()
        # drive the budget split far past 1: the sizing walk must reject it
        bad[0], bad[4] = 0.7, 0.4
        first = make_evaluator(store)
        ev1 = first.evaluate(bad)
        assert ev1.error is not None and ev1.metrics == {}
        assert math.isinf(ev1.score)

        second = make_evaluator(ResultStore(tmp_path / "s"))
        ev2 = second.evaluate(bad)
        assert second.stats()["store_hits"] == 1
        assert ev2.error == ev1.error and ev2.metrics == {}
        assert math.isinf(ev2.score) and not ev2.feasible

    def test_transient_failure_not_persisted(self, space, tmp_path,
                                             monkeypatch):
        """Infrastructure failures (broken pool, OS errors) must not
        become a design's permanent stored verdict."""
        import repro.optimize.evaluate as evaluate_mod

        store = ResultStore(tmp_path / "s")
        x = space.default()

        def broken(*args, **kwargs):
            raise OSError("worker died")

        flaky = make_evaluator(store)
        monkeypatch.setattr(evaluate_mod, "run_campaign", broken)
        ev = flaky.evaluate(x)
        assert ev.error is not None and ev.transient
        assert len(store) == 0                     # nothing persisted
        monkeypatch.undo()

        retry = make_evaluator(ResultStore(tmp_path / "s"))
        ev2 = retry.evaluate(x)
        assert ev2.error is None and ev2.metrics   # simulated for real
        assert retry.stats()["simulated"] == 1

    def test_score_recomputed_under_new_objective(self, space, tmp_path):
        """The store holds raw metrics; a re-weighted objective re-scores
        them without invalidating the cached simulation."""
        store = ResultStore(tmp_path / "s")
        x = space.default()
        ev1 = make_evaluator(store).evaluate(x)

        heavy = mic_amp_objective(mode="penalty")
        resumed = CandidateEvaluator(space, heavy, CMOS12,
                                     store=ResultStore(tmp_path / "s"))
        ev2 = resumed.evaluate(x)
        assert resumed.stats()["store_hits"] == 1
        assert ev2.metrics == ev1.metrics
        assert ev2.score == heavy.score(ev1.metrics)

    def test_robust_aggregation_joins_key(self, space, tmp_path):
        """Robust-mode stored metrics are worst-case aggregates shaped by
        the spec's bound directions; re-sensing a bound must miss rather
        than revive the wrongly-aggregated value."""
        from repro.optimize import RobustSettings
        from repro.optimize.objective import Objective
        from repro.pga.specs import Bound, Spec, SpecLimit

        root = tmp_path / "s"
        rb = RobustSettings(corners=("tt", "ss"))
        x = space.default()

        def evaluator(bound, limit):
            obj = Objective(spec=Spec("t", (SpecLimit("iq_ma", bound,
                                                      limit, "mA"),)),
                            minimize=(("iq_ma", 1.0),))
            return CandidateEvaluator(mic_amp_design_space(), obj, CMOS12,
                                      measurements=("iq_ma",), robust=rb,
                                      store=ResultStore(root))

        ev_max = evaluator(Bound.MAX, 3.0).evaluate(x)
        resensed = evaluator(Bound.MIN, 1.0)
        ev_min = resensed.evaluate(x)
        assert resensed.stats()["store_hits"] == 0    # new key, re-simulated
        # max-over-corners and min-over-corners genuinely differ
        assert ev_max.metrics["iq_ma"] > ev_min.metrics["iq_ma"]

    def test_context_partitions_store(self, space, tmp_path):
        """A different evaluator context (gain code here) must not see
        the other context's entries."""
        root = tmp_path / "s"
        make_evaluator(ResultStore(root)).evaluate(space.default())
        other = make_evaluator(ResultStore(root), gain_code=3)
        other.evaluate(space.default())
        assert other.stats()["store_hits"] == 0
        assert len(ResultStore(root)) == 2


class TestOptimizerResume:
    def test_full_run_resumes_byte_identical(self, tmp_path):
        root = tmp_path / "s"
        r1 = optimize_mic_amp(budget=12, seed=3, store=ResultStore(root))
        assert r1.evaluator_stats["simulated"] > 0

        r2 = optimize_mic_amp(budget=12, seed=3, store=ResultStore(root))
        assert r2.evaluator_stats["simulated"] == 0
        assert r2.best.score == r1.best.score
        np.testing.assert_array_equal(r2.best.x, r1.best.x)
        assert r2.pareto.to_json() == r1.pareto.to_json()

        # and matches a store-less run of the same seed exactly
        r3 = optimize_mic_amp(budget=12, seed=3)
        assert r3.pareto.to_json() == r1.pareto.to_json()
        assert r3.best.score == r1.best.score

    def test_extended_budget_reuses_prefix(self, tmp_path):
        """A longer search over the same seed replays the shared
        warm-start + LHS prefix of its candidate stream from the store
        (the stages diverge later when the budget split shifts)."""
        root = tmp_path / "s"
        optimize_mic_amp(budget=10, seed=3, store=ResultStore(root))
        r2 = optimize_mic_amp(budget=14, seed=3, store=ResultStore(root))
        assert r2.evaluator_stats["store_hits"] >= 4
        assert r2.evaluator_stats["simulated"] < 14
