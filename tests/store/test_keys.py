"""Key-scheme contracts: stability across processes, sensitivity to
everything a record depends on, insensitivity to everything it doesn't."""

import subprocess
import sys

import numpy as np
import pytest

from repro.campaign import CampaignSpec
from repro.store import (
    UnitKeyer,
    campaign_key,
    canonical_hash,
    canonical_json,
    design_key,
    evaluator_fingerprint,
    spec_fingerprint,
    unit_key,
)


def small_spec(**overrides):
    kwargs = dict(builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
                  seeds=(0, 1), gain_codes=(5,),
                  measurements=("offset_v", "iq_ma"))
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestCanonicalJson:
    def test_dict_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_sequence_order_matters(self):
        assert canonical_json([1, 2]) != canonical_json([2, 1])

    def test_numpy_equals_python(self):
        assert canonical_json({"v": np.float64(1.5)}) == canonical_json({"v": 1.5})
        assert canonical_json(np.array([1.0, 2.0])) == canonical_json([1.0, 2.0])

    def test_non_finite_tokenised(self):
        text = canonical_json([float("nan"), float("inf"), float("-inf")])
        assert "Infinity" not in text and "NaN" not in text
        assert '"$nf"' in text

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError, match="canonicalise"):
            canonical_json(object())


class TestUnitKeys:
    def test_keyer_matches_one_shot(self):
        spec = small_spec()
        keyer = UnitKeyer(spec)
        for unit in spec.expand():
            assert keyer.key(unit) == unit_key(spec, unit)

    def test_units_distinct(self):
        spec = small_spec()
        keys = [unit_key(spec, u) for u in spec.expand()]
        assert len(set(keys)) == len(keys)

    def test_key_ignores_other_axis_values(self):
        """Growing an axis must not move the overlapping units' keys —
        that is what makes incremental reruns reuse them."""
        a, b = small_spec(), small_spec(corners=("tt", "ss", "ff"),
                                        temps_c=(25.0, 85.0))
        unit = a.expand()[0]
        twin = next(u for u in b.expand()
                    if u.circuit_key() == unit.circuit_key()
                    and u.temp_c == unit.temp_c)
        assert unit_key(a, unit) == unit_key(b, twin)

    @pytest.mark.parametrize("overrides", [
        {"builder": "micamp_sized",
         "builder_kwargs": {"i_pair": 0.8e-3}},
        {"measurements": ("offset_v",)},
        {"measurements": ("iq_ma", "offset_v")},   # order is meaningful
    ])
    def test_key_tracks_spec_content(self, overrides):
        spec, changed = small_spec(), small_spec(**overrides)
        assert unit_key(spec, spec.expand()[0]) != \
            unit_key(changed, changed.expand()[0])

    def test_key_tracks_builder_kwargs_value(self):
        a = small_spec(builder="micamp_sized", builder_kwargs={"i_pair": 0.8e-3})
        b = small_spec(builder="micamp_sized", builder_kwargs={"i_pair": 0.9e-3})
        assert unit_key(a, a.expand()[0]) != unit_key(b, b.expand()[0])

    def test_key_tracks_technology(self):
        spec = small_spec()
        skewed = small_spec(tech=spec.tech.scaled(nmos={"vth0": 0.75}))
        assert unit_key(spec, spec.expand()[0]) != \
            unit_key(skewed, skewed.expand()[0])

    def test_key_tracks_unit_coordinates(self):
        spec = small_spec()
        u0, u1 = spec.expand()[0], spec.expand()[1]
        assert unit_key(spec, u0) != unit_key(spec, u1)

    def test_campaign_key_tracks_axes(self):
        assert campaign_key(small_spec()) != \
            campaign_key(small_spec(temps_c=(25.0, 85.0)))


_SUBPROCESS_SCRIPT = """
import json, sys
from repro.campaign import CampaignSpec
from repro.optimize import mic_amp_design_space
from repro.process import CMOS12
from repro.store import (UnitKeyer, campaign_key, canonical_hash,
                         design_key, evaluator_fingerprint, spec_fingerprint)

spec = CampaignSpec(builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
                    seeds=(0, 1), gain_codes=(5,),
                    measurements=("offset_v", "iq_ma"))
keyer = UnitKeyer(spec)
space = mic_amp_design_space()
ctx = canonical_hash(evaluator_fingerprint(
    space=space, tech=CMOS12, builder="micamp_sized",
    measurements=("iq_ma",), gain_code=5, robust=None))
print(json.dumps({
    "campaign": campaign_key(spec),
    "units": [keyer.key(u) for u in spec.expand()],
    "design": design_key(ctx, space.key(space.default())),
}))
"""


class TestCrossProcessStability:
    def test_subprocess_reproduces_keys(self):
        """The acceptance contract: hashing the same spec in a separate
        interpreter yields identical keys (no id()/hash-seed leakage)."""
        import json as _json

        from repro.optimize import mic_amp_design_space
        from repro.process import CMOS12

        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True, text=True, check=True,
        )
        remote = _json.loads(proc.stdout)

        spec = small_spec()
        keyer = UnitKeyer(spec)
        assert remote["campaign"] == campaign_key(spec)
        assert remote["units"] == [keyer.key(u) for u in spec.expand()]

        space = mic_amp_design_space()
        ctx = canonical_hash(evaluator_fingerprint(
            space=space, tech=CMOS12, builder="micamp_sized",
            measurements=("iq_ma",), gain_code=5, robust=None))
        assert remote["design"] == design_key(ctx, space.key(space.default()))


class TestDesignKeys:
    def _ctx(self, **overrides):
        from repro.optimize import mic_amp_design_space
        from repro.process import CMOS12

        kwargs = dict(space=mic_amp_design_space(), tech=CMOS12,
                      builder="micamp_sized",
                      measurements=("iq_ma", "noise_voice"),
                      gain_code=5, robust=None)
        kwargs.update(overrides)
        return evaluator_fingerprint(**kwargs)

    def test_same_context_same_key(self):
        from repro.optimize import mic_amp_design_space

        x = mic_amp_design_space().key(mic_amp_design_space().default())
        assert design_key(self._ctx(), x) == design_key(self._ctx(), x)

    def test_context_changes_key(self):
        from repro.optimize import RobustSettings, mic_amp_design_space

        x = mic_amp_design_space().key(mic_amp_design_space().default())
        base = design_key(self._ctx(), x)
        assert design_key(self._ctx(gain_code=3), x) != base
        assert design_key(self._ctx(measurements=("iq_ma",)), x) != base
        assert design_key(
            self._ctx(robust=RobustSettings(corners=("tt", "ss"))), x
        ) != base

    def test_vector_changes_key(self):
        from repro.optimize import mic_amp_design_space

        space = mic_amp_design_space()
        ctx = self._ctx()
        x = space.default()
        y = x.copy()
        y[5] *= 1.2
        assert design_key(ctx, space.key(x)) != design_key(ctx, space.key(y))

    def test_fingerprint_mentions_schema(self):
        assert spec_fingerprint(small_spec())["schema"] == \
            self._ctx()["schema"]
