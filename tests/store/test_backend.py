"""ResultStore backend: round-trip exactness, atomicity leftovers, gc,
concurrent sharing, export."""

import json
import math
import struct
import subprocess
import sys

import pytest

from repro.store import ResultStore


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def bits(x: float) -> bytes:
    return struct.pack("<d", x)


class TestRoundTrip:
    def test_basic(self, store):
        store.put("k1", {"a": 1.5, "b": -2.0}, kind="campaign-unit")
        assert store.get("k1") == {"a": 1.5, "b": -2.0}
        assert "k1" in store and "k2" not in store
        assert store.get("k2") is None
        assert len(store) == 1

    def test_floats_bit_exact(self, store):
        values = {"pi": math.pi, "tiny": 5e-324, "neg0": -0.0,
                  "big": 1.7976931348623157e308, "x": 0.1 + 0.2}
        store.put("f", values)
        back = store.get("f")
        for k, v in values.items():
            assert bits(back[k]) == bits(v), k

    def test_non_finite_survive_strict_json(self, store):
        store.put("nf", {"nan": math.nan, "pinf": math.inf,
                         "ninf": -math.inf, "nested": [math.nan, 1.0]})
        # payload on disk is strict JSON (no NaN/Infinity literals)
        path = store._object_path("nf")
        json.loads(path.read_text(), parse_constant=lambda s: pytest.fail(
            f"non-strict JSON constant {s} in payload"))
        back = store.get("nf")
        assert math.isnan(back["nan"]) and back["pinf"] == math.inf
        assert back["ninf"] == -math.inf and math.isnan(back["nested"][0])

    def test_key_order_preserved(self, store):
        """Record key order is part of the byte-identity contract: the
        merged CampaignResult derives metric column order from it."""
        store.put("o", {"z": 1.0, "a": 2.0, "m": 3.0})
        assert list(store.get("o")) == ["z", "a", "m"]

    def test_put_is_idempotent_overwrite(self, store):
        store.put("k", {"v": 1.0})
        store.put("k", {"v": 2.0})
        assert store.get("k") == {"v": 2.0}
        assert len(store) == 1

    def test_get_many(self, store):
        for i in range(7):
            store.put(f"k{i}", {"i": float(i)})
        got = store.get_many([f"k{i}" for i in range(10)])
        assert set(got) == {f"k{i}" for i in range(7)}
        assert got["k3"] == {"i": 3.0}
        assert store.get_many([]) == {}

    def test_put_many_single_transaction(self, store):
        store.put_many([(f"m{i}", {"i": float(i)}, "campaign-unit",
                         {"n": i}) for i in range(5)])
        assert len(store) == 5
        assert store.get("m2") == {"i": 2.0}
        store.put_many([])                         # no-op, no error


class TestMaintenance:
    def test_stat(self, store):
        store.put("a", {"x": 1.0}, kind="campaign-unit")
        store.put("b", {"x": 1.0}, kind="design-eval")
        stat = store.stat()
        assert stat["entries"] == 2
        assert set(stat["kinds"]) == {"campaign-unit", "design-eval"}
        assert stat["bytes"] > 0

    def test_gc_removes_orphan_payload_and_tmp(self, store):
        store.put("keep", {"x": 1.0})
        orphan = store.objects / "zz" / "zz123.json"
        orphan.parent.mkdir(parents=True)
        orphan.write_text("{}")
        stale_tmp = store.objects / "zz" / ".zz9.12345.0.tmp"
        stale_tmp.write_text("{")
        summary = store.gc(grace_s=0.0)
        assert summary["removed_files"] == 2
        assert not orphan.exists() and not stale_tmp.exists()
        assert not orphan.parent.exists()          # empty fan-out pruned
        assert store.get("keep") == {"x": 1.0}

    def test_gc_grace_spares_in_flight_files(self, store):
        """A concurrent put stages a tmp file moments before committing;
        default-grace gc must not sweep such fresh files away."""
        in_flight = store.objects / "aa" / ".aa1.999.0.tmp"
        in_flight.parent.mkdir(parents=True)
        in_flight.write_text("{")
        summary = store.gc()
        assert summary["removed_files"] == 0
        assert in_flight.exists()

    def test_gc_grace_window_spares_young_collects_stale(self, store):
        """The grace window splits orphans by age: an in-flight payload
        staged moments ago is spared, a stale one from an interrupted
        write (older than the window) is collected — in one gc pass."""
        import os
        import time

        fresh = store.objects / "aa" / "aa_inflight.json"
        fresh.parent.mkdir(parents=True)
        fresh.write_text("{}")                     # staged "just now"
        stale = store.objects / "bb" / "bb_stale.json"
        stale.parent.mkdir(parents=True)
        stale.write_text("{}")
        old = time.time() - 3600.0                 # well past any grace
        os.utime(stale, times=(old, old))

        summary = store.gc(grace_s=300.0)
        assert summary["removed_files"] == 1
        assert fresh.exists() and not stale.exists()
        # once the window has passed (grace 0), the survivor goes too
        summary = store.gc(grace_s=0.0)
        assert summary["removed_files"] == 1
        assert not fresh.exists()

    def test_gc_grace_spares_indexed_entry_regardless_of_age(self, store):
        """Age only matters for *unreferenced* files: an indexed payload
        is kept however old it is."""
        import os
        import time

        store.put("old", {"x": 1.0})
        path = store._object_path("old")
        old = time.time() - 3600.0
        os.utime(path, times=(old, old))
        summary = store.gc(grace_s=0.0)
        assert summary["removed_files"] == 0
        assert store.get("old") == {"x": 1.0}

    def test_gc_removes_dangling_row(self, store):
        store.put("gone", {"x": 1.0})
        store._object_path("gone").unlink()
        summary = store.gc()
        assert summary["removed_rows"] == 1
        assert "gone" not in store

    def test_reserved_token_key_rejected(self, store):
        with pytest.raises(ValueError, match="reserved"):
            store.put("bad", {"$nf": "nan"})
        with pytest.raises(ValueError, match="reserved"):
            store.put("bad", {"nested": [{"$nf": 1.0}]})

    def test_missing_payload_is_a_miss(self, store):
        store.put("gone", {"x": 1.0})
        store._object_path("gone").unlink()
        assert store.get("gone") is None
        assert "gone" not in store                 # row self-healed away

    def test_export(self, store, tmp_path):
        store.put("a", {"x": math.nan}, kind="campaign-unit",
                  meta={"builder": "bias"})
        store.put("b", {"y": 2.0}, kind="design-eval")
        out = tmp_path / "dump.json"
        assert store.export(out, kind="campaign-unit") == 1
        payload = json.loads(out.read_text())
        [entry] = payload["entries"]
        assert entry["key"] == "a" and entry["meta"]["builder"] == "bias"
        assert store.export(out) == 2

    def test_entries_filter_and_order(self, store):
        store.put("a", {"x": 1.0}, kind="ka")
        store.put("b", {"x": 1.0}, kind="kb")
        assert store.keys(kind="ka") == ["a"]
        assert set(store.keys()) == {"a", "b"}


class TestSharing:
    def test_two_handles_share_one_root(self, tmp_path):
        a = ResultStore(tmp_path / "s")
        b = ResultStore(tmp_path / "s")
        a.put("k", {"v": 42.0})
        assert b.get("k") == {"v": 42.0}

    def test_concurrent_processes(self, tmp_path):
        """Two interpreters writing disjoint keys into one root: no lost
        writes, no torn payloads."""
        root = tmp_path / "shared"
        script = (
            "import sys; from repro.store import ResultStore\n"
            "s = ResultStore(sys.argv[1])\n"
            "tag = sys.argv[2]\n"
            "for i in range(25):\n"
            "    s.put(f'{tag}{i}', {'i': float(i), 'tag': tag})\n"
        )
        procs = [subprocess.Popen([sys.executable, "-c", script,
                                   str(root), tag])
                 for tag in ("a", "b")]
        for p in procs:
            assert p.wait(timeout=60) == 0
        store = ResultStore(root)
        assert len(store) == 50
        for tag in ("a", "b"):
            for i in range(25):
                assert store.get(f"{tag}{i}") == {"i": float(i), "tag": tag}

    def test_pickles_without_connection(self, store):
        import pickle

        store.put("k", {"v": 1.0})
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get("k") == {"v": 1.0}

    def test_one_handle_shared_across_threads(self, store):
        """The serve layer shares one store object between HTTP handler
        threads and its worker pool: connections are per-thread, so
        cross-thread use must just work."""
        import threading

        store.put("main", {"v": 1.0})
        results = {}

        def reader_writer(tag):
            results[tag] = store.get("main")
            store.put(tag, {"tag": tag})

        threads = [threading.Thread(target=reader_writer, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(v == {"v": 1.0} for v in results.values())
        assert len(store) == 5


class TestContainsMany:
    def test_batched_membership(self, store):
        for i in range(7):
            store.put(f"k{i}", {"i": float(i)})
        present = store.contains_many([f"k{i}" for i in range(10)])
        assert present == {f"k{i}" for i in range(7)}
        assert store.contains_many([]) == set()

    def test_spans_query_batches(self, store):
        keys = [f"key-{i:04d}" for i in range(1200)]
        store.put_many([(k, {"i": float(i)}, "record", None)
                        for i, k in enumerate(keys)])
        present = store.contains_many(keys + ["absent"])
        assert present == set(keys)

    def test_vanished_payload_still_counts_as_present(self, store):
        """contains_many is an index probe by design: a row whose file
        was lost answers present here and heals to a miss in get_many —
        the warm path then re-executes exactly the lost units."""
        store.put("ghost", {"x": 1.0})
        store._object_path("ghost").unlink()
        assert store.contains_many(["ghost"]) == {"ghost"}
        assert store.get_many(["ghost"]) == {}
