"""Incremental campaign execution: cached-vs-missing partitioning and
the byte-identity contract across executors and processes."""

import subprocess
import sys

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ProcessPoolCampaignExecutor,
    SerialExecutor,
    run_campaign,
)
from repro.store import ResultStore


@pytest.fixture(scope="module")
def micamp_spec():
    return CampaignSpec(
        builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
        seeds=(0, 1), gain_codes=(5,),
        measurements=("offset_v", "iq_ma", "gain_1khz_db"),
    )


@pytest.fixture(scope="module")
def plain_result(micamp_spec):
    return run_campaign(micamp_spec)


class TestIncrementalExecution:
    def test_cold_run_matches_plain_and_populates(self, micamp_spec,
                                                  plain_result, tmp_path):
        store = ResultStore(tmp_path / "s")
        cold = run_campaign(micamp_spec, store=store)
        assert cold.store_stats == {
            "reused_units": 0, "executed_units": micamp_spec.n_units,
            "store_root": str(store.root), "store_errors": 0,
        }
        assert cold.data.tobytes() == plain_result.data.tobytes()
        assert len(store) == micamp_spec.n_units

    def test_warm_rerun_executes_nothing_byte_identical(
            self, micamp_spec, plain_result, tmp_path):
        root = tmp_path / "s"
        run_campaign(micamp_spec, store=ResultStore(root))
        warm = run_campaign(micamp_spec, store=ResultStore(root))
        assert warm.store_stats["executed_units"] == 0
        assert warm.store_stats["reused_units"] == micamp_spec.n_units
        assert warm.metrics == plain_result.metrics
        assert warm.data.tobytes() == plain_result.data.tobytes()
        assert warm.to_json() == plain_result.to_json()

    def test_grown_axis_reuses_overlap(self, micamp_spec, tmp_path):
        root = tmp_path / "s"
        run_campaign(micamp_spec, store=ResultStore(root))
        grown_spec = CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
            seeds=(0, 1, 2), gain_codes=(5,),
            measurements=("offset_v", "iq_ma", "gain_1khz_db"),
        )
        grown = run_campaign(grown_spec, store=ResultStore(root))
        assert grown.store_stats["reused_units"] == micamp_spec.n_units
        assert grown.store_stats["executed_units"] == \
            grown_spec.n_units - micamp_spec.n_units
        # and the merged result equals an uncached full run, bitwise
        full = run_campaign(grown_spec)
        assert grown.data.tobytes() == full.data.tobytes()

    def test_changed_measurements_miss(self, micamp_spec, tmp_path):
        root = tmp_path / "s"
        run_campaign(micamp_spec, store=ResultStore(root))
        other = CampaignSpec(
            builder="micamp", corners=("tt", "ss"), temps_c=(25.0,),
            seeds=(0, 1), gain_codes=(5,), measurements=("offset_v",),
        )
        res = run_campaign(other, store=ResultStore(root))
        assert res.store_stats["reused_units"] == 0

    def test_pool_executor_only_runs_missing(self, micamp_spec,
                                             plain_result, tmp_path):
        root = tmp_path / "s"
        # seed the store with half the campaign
        half = micamp_spec.expand()[:2]
        run_campaign(micamp_spec, store=ResultStore(root), units=half)
        mixed = run_campaign(
            micamp_spec, store=ResultStore(root),
            executor=ProcessPoolCampaignExecutor(max_workers=2),
            chunk_size=1,
        )
        assert mixed.store_stats["reused_units"] == 2
        assert mixed.store_stats["executed_units"] == micamp_spec.n_units - 2
        assert mixed.data.tobytes() == plain_result.data.tobytes()

    def test_serial_and_pool_store_same_bytes(self, micamp_spec, tmp_path):
        """Acceptance: store-backed runs are deterministic across
        executors — same keys, same payload bytes."""
        ra, rb = tmp_path / "a", tmp_path / "b"
        run_campaign(micamp_spec, store=ResultStore(ra),
                     executor=SerialExecutor())
        run_campaign(micamp_spec, store=ResultStore(rb),
                     executor=ProcessPoolCampaignExecutor(max_workers=2),
                     chunk_size=1)
        sa, sb = ResultStore(ra), ResultStore(rb)
        keys_a, keys_b = set(sa.keys()), set(sb.keys())
        assert keys_a == keys_b and keys_a
        for key in keys_a:
            assert sa._object_path(key).read_bytes() == \
                sb._object_path(key).read_bytes()


class TestCrossProcess:
    def test_warm_rerun_from_another_process(self, tmp_path):
        """Acceptance: a campaign cached by one process is reused, byte
        for byte, by another."""
        root = tmp_path / "shared"
        args = ["campaign", "--builder", "bias", "--corners", "tt,ss",
                "--temps", "25,85", "--measure", "bias_current_ua",
                "--store", str(root)]
        script = ("import sys; from repro.cli import main; "
                  "sys.exit(main(sys.argv[1:]))")

        cold = subprocess.run(
            [sys.executable, "-c", script, *args, "--json",
             str(tmp_path / "cold.json")],
            capture_output=True, text=True, check=True)
        assert "0 reused, 4 executed" in cold.stdout

        warm = subprocess.run(
            [sys.executable, "-c", script, *args, "--json",
             str(tmp_path / "warm.json")],
            capture_output=True, text=True, check=True)
        assert "4 reused, 0 executed" in warm.stdout
        assert (tmp_path / "cold.json").read_bytes() == \
            (tmp_path / "warm.json").read_bytes()

        # and in-process against the same root, still byte-identical
        spec = CampaignSpec(builder="bias", corners=("tt", "ss"),
                            temps_c=(25.0, 85.0),
                            measurements=("bias_current_ua",))
        local = run_campaign(spec, store=ResultStore(root))
        assert local.store_stats["executed_units"] == 0
        assert local.to_json() + "\n" == (tmp_path / "cold.json").read_text()


class TestChunkingEdgeCases:
    """Satellite: empty campaigns and oversized chunks must be
    well-formed on both executors."""

    @pytest.fixture(scope="class")
    def bias_spec(self):
        return CampaignSpec(builder="bias", corners=("tt", "ss"),
                            temps_c=(25.0,), measurements=("bias_current_ua",))

    @pytest.mark.parametrize("make_executor", [
        SerialExecutor,
        lambda: ProcessPoolCampaignExecutor(max_workers=2),
    ])
    def test_zero_units(self, bias_spec, make_executor):
        result = run_campaign(bias_spec, executor=make_executor(), units=[])
        assert len(result) == 0
        assert result.metrics == ()
        assert result.columns == ("corner", "temp_c", "supply", "seed",
                                  "gain_code")
        assert "0 units" in result.summary()
        assert result.to_json()            # exportable

    @pytest.mark.parametrize("make_executor", [
        SerialExecutor,
        lambda: ProcessPoolCampaignExecutor(max_workers=2),
    ])
    def test_chunk_size_larger_than_campaign(self, bias_spec, make_executor):
        reference = run_campaign(bias_spec)
        huge = run_campaign(bias_spec, executor=make_executor(),
                            chunk_size=10_000)
        assert len(huge) == bias_spec.n_units
        assert huge.data.tobytes() == reference.data.tobytes()

    def test_zero_units_with_store(self, bias_spec, tmp_path):
        result = run_campaign(bias_spec, store=ResultStore(tmp_path / "s"),
                              units=[])
        assert len(result) == 0
        assert result.store_stats["executed_units"] == 0
        assert result.store_stats["reused_units"] == 0

    def test_bad_chunk_size_still_rejected(self, bias_spec):
        with pytest.raises(ValueError, match="chunk_size"):
            run_campaign(bias_spec, chunk_size=0)

    def test_explicit_unit_subset(self, bias_spec):
        units = bias_spec.expand()[:1]
        result = run_campaign(bias_spec, units=units)
        assert len(result) == 1
        assert result.column("corner")[0] == "tt"
