"""Distortion measurements: analytic nonlinearities and circuit cross-checks."""

import numpy as np
import pytest

from repro.analysis.distortion import (
    StaticTransfer,
    amplitude_at_thd,
    goertzel_dft,
    goertzel_harmonics,
    measure_static_transfer,
    static_thd,
    transient_thd,
)


def cubic_transfer(a3=0.01, span=2.0, points=201):
    vin = np.linspace(-span, span, points)
    return StaticTransfer(vin, vin + a3 * vin**3)


class TestStaticTransfer:
    def test_hd3_of_cubic_matches_theory(self):
        """y = x + a3 x^3 -> HD3 = a3 A^2 / 4 for small a3."""
        a3, amp = 0.01, 1.0
        thd = cubic_transfer(a3).thd(amp)
        assert thd == pytest.approx(a3 * amp**2 / 4.0, rel=0.02)

    def test_hd2_of_quadratic_matches_theory(self):
        """y = x + a2 x^2 -> HD2 = a2 A / 2."""
        a2, amp = 0.02, 0.5
        vin = np.linspace(-2, 2, 201)
        transfer = StaticTransfer(vin, vin + a2 * vin**2)
        assert transfer.thd(amp) == pytest.approx(a2 * amp / 2.0, rel=0.02)

    def test_linear_transfer_has_zero_thd(self):
        vin = np.linspace(-1, 1, 64)
        transfer = StaticTransfer(vin, 3.0 * vin)
        assert transfer.thd(0.5) < 1e-9

    def test_thd_grows_with_amplitude(self):
        transfer = cubic_transfer(0.05)
        assert transfer.thd(1.5) > transfer.thd(0.5)

    def test_gain_at(self):
        transfer = cubic_transfer(0.01)
        assert transfer.gain_at(0.0) == pytest.approx(1.0, rel=0.01)
        assert transfer.gain_at(1.0) == pytest.approx(1.03, rel=0.02)

    def test_apply_range_checked(self):
        transfer = cubic_transfer(0.01, span=1.0)
        with pytest.raises(ValueError, match="exceeds"):
            transfer.apply(np.array([1.5]))

    def test_output_amplitude(self):
        transfer = cubic_transfer(0.0, span=2.0)
        assert transfer.output_amplitude(0.7) == pytest.approx(0.7, rel=1e-3)

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            StaticTransfer(np.arange(4.0), np.arange(4.0))


class TestGoertzel:
    def test_matches_direct_dtft_at_arbitrary_bins(self):
        rng = np.random.default_rng(11)
        y = rng.standard_normal(777)
        freqs = np.array([0.0123, 0.1, 0.256789, 0.499])
        n = np.arange(y.size)
        ref = np.array([np.sum(y * np.exp(-2j * np.pi * f * n)) for f in freqs])
        got = goertzel_dft(y, freqs)
        np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_matches_fft_on_integer_bins(self):
        rng = np.random.default_rng(12)
        y = rng.standard_normal(256)
        spec = np.fft.rfft(y)
        got = goertzel_dft(y, np.array([3, 17, 100]) / 256.0)
        np.testing.assert_allclose(got, spec[[3, 17, 100]], rtol=1e-9)

    def test_rejects_too_short_records(self):
        with pytest.raises(ValueError, match="at least 4"):
            goertzel_dft(np.ones(3), [0.1])

    def test_two_harmonic_regression_with_noninteger_cycles(self):
        """The satellite case: a two-harmonic tone sampled at 48 kHz /
        997 Hz, where no window holds an integer number of cycles (48.14
        samples per cycle).  Reading harmonics at the exact frequencies
        k*f0 via Goertzel recovers the -60 dB second harmonic to ~1 %;
        the FFT pick at the nearest grid bin is an order of magnitude
        worse because the fundamental leaks across the off-grid bins."""
        fs, f0 = 48000.0, 997.0
        a1, a2 = 1.0, 1e-3
        n = int(round(20 * fs / f0))     # ~20 cycles, never exactly coherent
        t = np.arange(n) / fs
        y = a1 * np.sin(2 * np.pi * f0 * t) + \
            a2 * np.sin(2 * np.pi * 2 * f0 * t + 0.7)

        amps = goertzel_harmonics(y, f0 / fs, 2)
        assert amps[0] == pytest.approx(a1, rel=1e-3)
        assert amps[1] == pytest.approx(a2, rel=0.05)

        # the naive FFT pick reads the 2nd harmonic from leaked energy
        mags = np.abs(np.fft.rfft(y - y.mean())) / n * 2.0
        k2 = int(round(2 * f0 / fs * n))
        fft_err = abs(mags[k2] - a2) / a2
        goertzel_err = abs(amps[1] - a2) / a2
        assert fft_err > 10.0 * goertzel_err

    def test_edge_sample_does_not_leak_into_harmonics(self):
        """The transient_thd segment shape: N whole cycles plus one edge
        sample (last_cycles keeps both endpoints).  The whole-cycle trim
        must keep a phase-lagged fundamental from leaking ~2*sin(phi)/N
        into every harmonic bin — at the -52 dB spec level that leakage
        would otherwise dominate the measurement."""
        ppc, cycles, phi, a3 = 400, 2, 1.0, 1e-3
        t = np.arange(ppc * cycles + 1) / ppc  # in fundamental cycles
        y = np.sin(2 * np.pi * t + phi) + a3 * np.sin(6 * np.pi * t)
        amps = goertzel_harmonics(y, 1.0 / ppc, 9)
        thd = np.sqrt(np.sum(amps[1:] ** 2)) / amps[0]
        assert thd == pytest.approx(a3, rel=0.02)

    def test_static_thd_unchanged_by_the_goertzel_path(self):
        """One-cycle synthetic records sit exactly on FFT bins, so the
        Goertzel rewrite must reproduce the legacy FFT numbers."""
        a3, amp = 0.01, 1.0
        transfer = cubic_transfer(a3)
        n_points, n_harmonics = 4096, 7
        t = np.arange(n_points) / n_points
        out = transfer.apply(amp * np.sin(2.0 * np.pi * t))
        spec = np.abs(np.fft.rfft(out - out.mean())) / n_points * 2.0
        legacy = float(np.sqrt(np.sum(spec[2:2 + n_harmonics - 1] ** 2))
                       / spec[1])
        assert transfer.thd(amp) == pytest.approx(legacy, rel=1e-9)


class TestAmplitudeSearch:
    def test_finds_threshold_amplitude(self):
        a3 = 0.01
        transfer = cubic_transfer(a3, span=3.0)
        # THD(A) = a3 A^2/4 = 0.003 -> A = sqrt(0.012/a3)
        a = amplitude_at_thd(transfer, 0.003, 0.1, 2.5)
        assert a == pytest.approx(np.sqrt(0.012 / a3), rel=0.02)

    def test_returns_nan_if_floor_too_high(self):
        transfer = cubic_transfer(0.5, span=3.0)
        assert np.isnan(amplitude_at_thd(transfer, 1e-6, 1.0, 2.0))

    def test_returns_hi_if_always_clean(self):
        transfer = cubic_transfer(1e-9, span=3.0)
        assert amplitude_at_thd(transfer, 0.01, 0.1, 2.0) == pytest.approx(2.0)


class TestCircuitMeasurements:
    def test_static_transfer_of_mic_amp(self, tech):
        from repro.circuits.micamp import build_mic_amp

        design = build_mic_amp(tech, gain_code=0)
        transfer = measure_static_transfer(
            design.circuit, "vin_p", "vin_n", "outp", "outn",
            amplitude=0.3, points=21,
        )
        assert transfer.gain_at(0.0) == pytest.approx(3.162, rel=0.01)

    def test_static_and_transient_thd_agree(self, tech):
        """The fast path must match the full simulation at voice band."""
        from repro.circuits.micamp import build_mic_amp

        design = build_mic_amp(tech, gain_code=0)
        thd_static = static_thd(design.circuit, "vin_p", "vin_n",
                                "outp", "outn", amplitude=0.4, points=31)
        thd_tran, wave = transient_thd(design.circuit, "vin_p", "vin_n",
                                       "outp", "outn", amplitude=0.4,
                                       cycles=3, points_per_cycle=300)
        assert wave.peak_to_peak() > 1.0
        # agreement within a factor ~2 at these tiny distortion levels
        assert thd_tran == pytest.approx(thd_static, rel=1.0, abs=2e-4)

    def test_transient_thd_restores_sources(self, tech):
        from repro.circuits.micamp import build_mic_amp

        design = build_mic_amp(tech, gain_code=0)
        transient_thd(design.circuit, "vin_p", "vin_n", "outp", "outn",
                      amplitude=0.2, cycles=2, points_per_cycle=200)
        assert design.circuit.element("vin_p").wave is None
