"""Distortion measurements: analytic nonlinearities and circuit cross-checks."""

import numpy as np
import pytest

from repro.analysis.distortion import (
    StaticTransfer,
    amplitude_at_thd,
    measure_static_transfer,
    static_thd,
    transient_thd,
)


def cubic_transfer(a3=0.01, span=2.0, points=201):
    vin = np.linspace(-span, span, points)
    return StaticTransfer(vin, vin + a3 * vin**3)


class TestStaticTransfer:
    def test_hd3_of_cubic_matches_theory(self):
        """y = x + a3 x^3 -> HD3 = a3 A^2 / 4 for small a3."""
        a3, amp = 0.01, 1.0
        thd = cubic_transfer(a3).thd(amp)
        assert thd == pytest.approx(a3 * amp**2 / 4.0, rel=0.02)

    def test_hd2_of_quadratic_matches_theory(self):
        """y = x + a2 x^2 -> HD2 = a2 A / 2."""
        a2, amp = 0.02, 0.5
        vin = np.linspace(-2, 2, 201)
        transfer = StaticTransfer(vin, vin + a2 * vin**2)
        assert transfer.thd(amp) == pytest.approx(a2 * amp / 2.0, rel=0.02)

    def test_linear_transfer_has_zero_thd(self):
        vin = np.linspace(-1, 1, 64)
        transfer = StaticTransfer(vin, 3.0 * vin)
        assert transfer.thd(0.5) < 1e-9

    def test_thd_grows_with_amplitude(self):
        transfer = cubic_transfer(0.05)
        assert transfer.thd(1.5) > transfer.thd(0.5)

    def test_gain_at(self):
        transfer = cubic_transfer(0.01)
        assert transfer.gain_at(0.0) == pytest.approx(1.0, rel=0.01)
        assert transfer.gain_at(1.0) == pytest.approx(1.03, rel=0.02)

    def test_apply_range_checked(self):
        transfer = cubic_transfer(0.01, span=1.0)
        with pytest.raises(ValueError, match="exceeds"):
            transfer.apply(np.array([1.5]))

    def test_output_amplitude(self):
        transfer = cubic_transfer(0.0, span=2.0)
        assert transfer.output_amplitude(0.7) == pytest.approx(0.7, rel=1e-3)

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            StaticTransfer(np.arange(4.0), np.arange(4.0))


class TestAmplitudeSearch:
    def test_finds_threshold_amplitude(self):
        a3 = 0.01
        transfer = cubic_transfer(a3, span=3.0)
        # THD(A) = a3 A^2/4 = 0.003 -> A = sqrt(0.012/a3)
        a = amplitude_at_thd(transfer, 0.003, 0.1, 2.5)
        assert a == pytest.approx(np.sqrt(0.012 / a3), rel=0.02)

    def test_returns_nan_if_floor_too_high(self):
        transfer = cubic_transfer(0.5, span=3.0)
        assert np.isnan(amplitude_at_thd(transfer, 1e-6, 1.0, 2.0))

    def test_returns_hi_if_always_clean(self):
        transfer = cubic_transfer(1e-9, span=3.0)
        assert amplitude_at_thd(transfer, 0.01, 0.1, 2.0) == pytest.approx(2.0)


class TestCircuitMeasurements:
    def test_static_transfer_of_mic_amp(self, tech):
        from repro.circuits.micamp import build_mic_amp

        design = build_mic_amp(tech, gain_code=0)
        transfer = measure_static_transfer(
            design.circuit, "vin_p", "vin_n", "outp", "outn",
            amplitude=0.3, points=21,
        )
        assert transfer.gain_at(0.0) == pytest.approx(3.162, rel=0.01)

    def test_static_and_transient_thd_agree(self, tech):
        """The fast path must match the full simulation at voice band."""
        from repro.circuits.micamp import build_mic_amp

        design = build_mic_amp(tech, gain_code=0)
        thd_static = static_thd(design.circuit, "vin_p", "vin_n",
                                "outp", "outn", amplitude=0.4, points=31)
        thd_tran, wave = transient_thd(design.circuit, "vin_p", "vin_n",
                                       "outp", "outn", amplitude=0.4,
                                       cycles=3, points_per_cycle=300)
        assert wave.peak_to_peak() > 1.0
        # agreement within a factor ~2 at these tiny distortion levels
        assert thd_tran == pytest.approx(thd_static, rel=1.0, abs=2e-4)

    def test_transient_thd_restores_sources(self, tech):
        from repro.circuits.micamp import build_mic_amp

        design = build_mic_amp(tech, gain_code=0)
        transient_thd(design.circuit, "vin_p", "vin_n", "outp", "outn",
                      amplitude=0.2, cycles=2, points_per_cycle=200)
        assert design.circuit.element("vin_p").wave is None
