"""Gain measurement, PSRR/CMRR, slew-rate drivers."""

import numpy as np
import pytest

from repro.analysis.gain import measure_gain_codes
from repro.analysis.psrr import measure_cmrr, measure_psrr
from repro.analysis.slew import measure_slew_rate
from repro.circuits.micamp import build_mic_amp
from repro.process.mismatch import MismatchSampler


class TestGainMeasurement:
    @pytest.fixture(scope="class")
    def gm(self, tech):
        design = build_mic_amp(tech, gain_code=5)
        return measure_gain_codes(design)

    def test_all_codes_measured(self, gm):
        assert gm.codes == list(range(6))
        assert gm.nominal_db == [10.0, 16.0, 22.0, 28.0, 34.0, 40.0]

    def test_worst_error_within_table1(self, gm):
        assert gm.worst_error_db <= 0.05

    def test_step_errors_tiny(self, gm):
        assert gm.worst_step_error_db < 0.05

    def test_format_is_readable(self, gm):
        text = gm.format()
        assert "40.0 dB" in text
        assert text.count("\n") == 6

    def test_restores_gain_code(self, tech):
        design = build_mic_amp(tech, gain_code=2)
        measure_gain_codes(design)
        assert design.gain_code == 2


class TestPsrr:
    def test_nominal_fd_psrr_is_enormous(self, tech):
        """Perfect matching -> supply ripple is pure common mode."""
        design = build_mic_amp(tech, gain_code=5)
        res = measure_psrr(design.circuit, "vdd_src", ("vin_p", "vin_n"),
                           "outp", "outn")
        assert res.ratio_db > 120.0

    def test_mismatch_brings_psrr_to_paper_levels(self, tech):
        sampler = MismatchSampler(tech, np.random.default_rng(7))
        design = build_mic_amp(tech, gain_code=5, mismatch=sampler)
        res = measure_psrr(design.circuit, "vdd_src", ("vin_p", "vin_n"),
                           "outp", "outn")
        assert 60.0 < res.ratio_db < 140.0

    def test_ac_stimulus_restored(self, tech):
        design = build_mic_amp(tech, gain_code=5)
        before = (design.circuit.element("vin_p").ac,
                  design.circuit.element("vdd_src").ac)
        measure_psrr(design.circuit, "vdd_src", ("vin_p", "vin_n"),
                     "outp", "outn")
        after = (design.circuit.element("vin_p").ac,
                 design.circuit.element("vdd_src").ac)
        assert before == after

    def test_rejects_non_source(self, tech):
        design = build_mic_amp(tech, gain_code=5)
        with pytest.raises(TypeError):
            measure_psrr(design.circuit, "rcm_p", ("vin_p", "vin_n"),
                         "outp", "outn")


class TestCmrr:
    def test_nominal_cmrr_large(self, tech):
        design = build_mic_amp(tech, gain_code=5)
        res = measure_cmrr(design.circuit, ("vin_p", "vin_n"), "outp", "outn")
        assert res.ratio_db > 80.0

    def test_differential_gain_reported(self, tech):
        design = build_mic_amp(tech, gain_code=5)
        res = measure_cmrr(design.circuit, ("vin_p", "vin_n"), "outp", "outn")
        assert res.gain_signal == pytest.approx(100.0, rel=0.05)


class TestSlew:
    def test_rc_limited_circuit(self):
        """A passive RC has 'slew' = V_step/tau at the step instant."""
        from repro.spice import Circuit

        ckt = Circuit("rc")
        ckt.vsource("vin", "a", "gnd", dc=0.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.capacitor("c1", "b", "gnd", 1e-9)
        res = measure_slew_rate(ckt, "vin", None, "b", None,
                                step=1.0, duration=10e-6, dt=10e-9)
        assert res.slew_v_per_s == pytest.approx(1.0 / 1e-6, rel=0.1)
        assert res.rise_time_s == pytest.approx(2.2e-6, rel=0.1)

    def test_buffer_slew_in_v_per_us_range(self, tech):
        from repro.circuits.powerbuffer import build_power_buffer

        design = build_power_buffer(tech, feedback="inverting", load="resistive")
        res = measure_slew_rate(design.circuit, "vsrc_p", "vsrc_n",
                                "outp", "outn", step=1.0,
                                duration=20e-6, dt=25e-9)
        assert 1.0 < res.slew_v_per_s / 1e6 < 50.0
        assert res.overshoot_frac < 0.3

    def test_no_movement_raises(self):
        from repro.spice import Circuit

        ckt = Circuit("dead")
        ckt.vsource("vin", "a", "gnd", dc=0.0)
        ckt.resistor("r1", "a", "gnd", 1e3)
        ckt.resistor("r2", "b", "gnd", 1e3)
        ckt.vsource("vfix", "b", "gnd", dc=0.0)
        with pytest.raises((ValueError, TypeError)):
            measure_slew_rate(ckt, "vfix", None, "a", None, step=0.0)
