"""Eqs. 2-5: the analytic noise budget against the simulator."""

import numpy as np
import pytest

from repro.analysis.dynamic_range import (
    VoiceBandBudget,
    eq2_required_noise,
    snr_from_noise,
    snr_from_spectrum,
)
from repro.analysis.noise_budget import (
    MicAmpNoiseBudget,
    eq4_output_noise_psd,
    eq5_switch_noise,
    eq5_switch_ron,
    mos_flicker_svg,
    mos_thermal_svg,
    resistor_psd,
)
from repro.constants import BOLTZMANN

KT4 = 4 * BOLTZMANN * 298.15


class TestEq2:
    def test_paper_headline_number(self):
        """Eq. 2 with the paper's numbers gives exactly 5.1 nV/rtHz."""
        assert eq2_required_noise() * 1e9 == pytest.approx(5.1, abs=0.05)

    def test_inverse_consistency(self):
        noise = eq2_required_noise()
        assert snr_from_noise(noise) == pytest.approx(86.5, abs=0.01)

    def test_enob_of_86_5db_is_14_bits(self):
        assert VoiceBandBudget().effective_bits() == pytest.approx(14.1, abs=0.2)

    def test_tighter_snr_needs_less_noise(self):
        assert eq2_required_noise(snr_db=90.0) < eq2_required_noise(snr_db=80.0)

    def test_snr_from_flat_spectrum_matches_closed_form(self):
        freqs = np.linspace(100.0, 4000.0, 200)
        level = 5.1e-9
        psd = np.full_like(freqs, level**2)
        direct = snr_from_spectrum(freqs, psd, 300.0, 3400.0)
        closed = snr_from_noise(level, bandwidth=3100.0)
        assert direct == pytest.approx(closed, abs=0.1)


class TestEq3Eq5Components:
    def test_thermal_svg_value(self):
        """8kT/(3gm) at gm = 1 mS is about 11 nV^2/Hz x 1e-18."""
        svg = mos_thermal_svg(1e-3)
        assert svg == pytest.approx((8.0 / 3.0) * BOLTZMANN * 298.15 / 1e-3, rel=1e-9)

    def test_thermal_requires_positive_gm(self):
        with pytest.raises(ValueError):
            mos_thermal_svg(0.0)

    def test_flicker_svg_area_law(self):
        a = mos_flicker_svg(1e-25, 1.38e-3, 100e-6, 10e-6, 1e3)
        b = mos_flicker_svg(1e-25, 1.38e-3, 400e-6, 10e-6, 1e3)
        assert a / b == pytest.approx(4.0)

    def test_resistor_psd(self):
        assert resistor_psd(1e3) == pytest.approx(KT4 * 1e3, rel=1e-9)

    def test_eq5_ron_formula(self, tech):
        """Ron = 1/((W/L) muCox Veff)."""
        ron = eq5_switch_ron(tech, w_over_l=100.0, veff=0.5)
        assert ron == pytest.approx(1.0 / (100.0 * tech.nmos.kp * 0.5), rel=1e-9)

    def test_eq5_noise_tracks_ron(self, tech):
        n1 = eq5_switch_noise(tech, 100.0, 0.5)
        n2 = eq5_switch_noise(tech, 200.0, 0.5)
        assert n1 / n2 == pytest.approx(2.0, rel=1e-9)

    def test_eq5_rejects_off_switch(self, tech):
        with pytest.raises(ValueError):
            eq5_switch_ron(tech, 100.0, -0.1)

    def test_eq4_structure(self):
        """Output noise scales as A_cl^2 and grows with Ra||Rf and Ron."""
        base = eq4_output_noise_psd(100.0, 250.0, 24750.0, 1e-17, 70.0)
        higher_gain = eq4_output_noise_psd(200.0, 250.0, 24750.0, 1e-17, 70.0)
        bigger_ra = eq4_output_noise_psd(100.0, 500.0, 24500.0, 1e-17, 70.0)
        bigger_ron = eq4_output_noise_psd(100.0, 250.0, 24750.0, 1e-17, 140.0)
        assert higher_gain == pytest.approx(4.0 * base, rel=1e-6)
        assert bigger_ra > base
        assert bigger_ron > base


class TestBudgetVsSimulation:
    """The Sec. 3 argument chain: analytic budget ~ adjoint simulation."""

    @pytest.fixture(scope="class")
    def budget(self, mic_amp_40db, mic_amp_op):
        return MicAmpNoiseBudget.from_design(mic_amp_40db, mic_amp_op)

    def test_thermal_floor_agrees_within_25_percent(self, budget, mic_amp_noise):
        sim = mic_amp_noise.input_nv_at(50e3)
        analytic = budget.input_nv(50e3)
        assert analytic == pytest.approx(sim, rel=0.25)

    def test_1khz_agrees_within_25_percent(self, budget, mic_amp_noise):
        assert budget.input_nv(1e3) == pytest.approx(
            mic_amp_noise.input_nv_at(1e3), rel=0.25
        )

    def test_band_average_agrees(self, budget, mic_amp_noise):
        sim_avg = mic_amp_noise.average_input_density(300, 3400) * 1e9
        assert budget.average_input_nv() == pytest.approx(sim_avg, rel=0.25)

    def test_flicker_corner_in_voice_band_decade(self, budget):
        """Fig. 7: the 1/f knee sits in or just below the voice band."""
        corner = budget.flicker_corner_hz()
        assert 50.0 < corner < 2000.0

    def test_breakdown_sums_to_total(self, budget):
        parts = budget.breakdown(1e3)
        assert sum(parts.values()) == pytest.approx(budget.input_psd(1e3), rel=1e-9)

    def test_gain_code_dependence_matches_eq4(self, budget):
        """Input noise grows toward low-gain codes through R_a||R_f."""
        low = budget.input_psd(10e3, code=0)
        high = budget.input_psd(10e3, code=5)
        delta = low - high
        expected = budget.network_thermal(0) - budget.network_thermal(5)
        assert delta == pytest.approx(expected, rel=1e-9)
