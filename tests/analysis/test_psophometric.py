"""ITU-T O.41 psophometric weighting."""

import numpy as np
import pytest

from repro.analysis.psophometric import (
    O41_TABLE,
    psophometric_rms,
    psophometric_weight,
    psophometric_weight_db,
    weighted_snr_db,
)


class TestWeightingCurve:
    def test_reference_at_800hz(self):
        assert psophometric_weight_db(800.0) == pytest.approx(0.0, abs=0.05)

    def test_peak_near_1khz(self):
        assert psophometric_weight_db(1000.0) == pytest.approx(1.0, abs=0.05)

    def test_table_points_reproduced(self):
        for freq, db in O41_TABLE:
            assert psophometric_weight_db(freq) == pytest.approx(db, abs=0.01)

    def test_steep_rolloff_below_300(self):
        assert psophometric_weight_db(50.0) < -60.0

    def test_rolloff_above_3400(self):
        assert psophometric_weight_db(5000.0) < -30.0

    def test_linear_weight_is_exp_of_db(self):
        w = psophometric_weight(800.0)
        assert w == pytest.approx(1.0, abs=0.01)

    def test_vectorised(self):
        freqs = np.array([300.0, 800.0, 3000.0])
        w = psophometric_weight(freqs)
        assert w.shape == (3,)
        # O.41 rises from 300 Hz (-10.6 dB) through 800 Hz (0 dB) and is
        # still at only -5.6 dB by 3 kHz
        assert w[1] > w[2] > w[0]


class TestWeightedRms:
    def test_weighting_reduces_white_noise(self):
        freqs = np.linspace(30.0, 6000.0, 500)
        psd = np.full_like(freqs, 1e-12)
        flat = np.sqrt(np.trapezoid(psd, freqs))
        weighted = psophometric_rms(freqs, psd)
        assert weighted < flat

    def test_tone_at_800hz_passes_unattenuated(self):
        freqs = np.linspace(700.0, 900.0, 101)
        psd = np.zeros_like(freqs)
        psd[50] = 1e-6  # narrow "tone" at 800 Hz
        weighted = psophometric_rms(freqs, psd)
        unweighted = np.sqrt(np.trapezoid(psd, freqs))
        assert weighted == pytest.approx(unweighted, rel=0.05)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            psophometric_rms(np.arange(5.0) + 1.0, np.arange(4.0))

    def test_weighted_snr(self):
        freqs = np.linspace(30.0, 6000.0, 500)
        psd = np.full_like(freqs, 1e-14)
        snr = weighted_snr_db(0.6, freqs, psd)
        assert snr > 80.0
