"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in (["table1"], ["table2", "--quick"], ["noise", "--code", "3"],
                    ["gains"], ["opamp"], ["export", "micamp", "-"],
                    ["serve", "--port", "0"],
                    ["client", "submit", "spec.json", "--url", "http://x"],
                    ["client", "metrics"]):
            args = parser.parse_args(cmd)
            assert callable(args.func)

    def test_bad_gain_code_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["noise", "--code", "9"])


class TestCommands:
    def test_gains_prints_table(self, capsys):
        assert main(["gains"]) == 0
        out = capsys.readouterr().out
        assert "40.0 dB" in out
        assert "worst absolute error" in out

    def test_opamp_figures(self, capsys):
        assert main(["opamp"]) == 0
        out = capsys.readouterr().out
        assert "I_Q" in out and "GBW" in out

    def test_noise_spectrum(self, capsys):
        assert main(["noise", "--code", "5"]) == 0
        out = capsys.readouterr().out
        assert "voice-band average" in out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "bias", "-"]) == 0
        out = capsys.readouterr().out
        assert ".end" in out
        assert "Qq1" in out

    def test_export_to_file(self, tmp_path, capsys):
        path = tmp_path / "buffer.cir"
        assert main(["export", "powerbuffer", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_table1_quick(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "overall: PASS" in out

    def test_campaign_serial(self, tmp_path, capsys):
        csv = tmp_path / "c.csv"
        assert main(["campaign", "--builder", "micamp", "--corners", "tt",
                     "--temps", "25", "--trials", "2",
                     "--measure", "offset_v,iq_ma", "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "2 units" in out
        assert "iq_ma" in out
        header = csv.read_text().splitlines()[0]
        assert header.startswith("corner,temp_c,supply,seed,gain_code")

    def test_campaign_negative_temps_space_form(self, capsys):
        """`--temps -20,85` must not be eaten as an option string."""
        assert main(["campaign", "--builder", "bias", "--corners", "tt",
                     "--temps", "-20,85",
                     "--measure", "bias_current_ua"]) == 0
        assert "2 temps" in capsys.readouterr().out

    def test_campaign_explicit_seeds_and_codes(self, capsys):
        assert main(["campaign", "--corners", "tt", "--temps", "25",
                     "--seeds", "7", "--codes", "0,5",
                     "--measure", "gain_1khz_db"]) == 0
        assert "2 codes" in capsys.readouterr().out

    def test_optimize_quick_passes_table1(self, tmp_path, capsys):
        front = tmp_path / "front.json"
        assert main(["optimize", "--quick", "--no-progress",
                     "--pareto-json", str(front)]) == 0
        out = capsys.readouterr().out
        assert "overall: PASS" in out
        assert "Pareto front" in out
        assert front.exists()

    def test_optimize_bad_corner_rejected(self, capsys):
        assert main(["optimize", "--robust", "--corners", "nope",
                     "--budget", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_optimize_grid_flags_require_robust(self, capsys):
        assert main(["optimize", "--corners", "tt,ss", "--budget", "4"]) == 2
        assert "--robust" in capsys.readouterr().err
        assert main(["optimize", "--trials", "2", "--budget", "4"]) == 2
        assert "--robust" in capsys.readouterr().err


class TestSpecFiles:
    """`--spec FILE` on campaign/optimize: the serve-layer schema with
    one-line failures (never a traceback) and exit code 2."""

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(payload if isinstance(payload, str)
                        else json.dumps(payload))
        return str(path)

    def test_campaign_spec_file_runs(self, tmp_path, capsys):
        spec = self._write(tmp_path, "spec.json", {
            "builder": "bias", "corners": ["tt"], "temps_c": [25.0, 85.0],
            "measurements": ["bias_current_ua"]})
        assert main(["campaign", "--spec", spec]) == 0
        out = capsys.readouterr().out
        assert "2 units" in out and "bias_current_ua" in out

    def test_campaign_spec_file_matches_flags(self, tmp_path, capsys):
        """The same campaign described by flags and by file must export
        identical bytes — one schema behind both front doors."""
        spec = self._write(tmp_path, "spec.json", {
            "builder": "bias", "corners": ["tt"], "temps_c": [25.0, 85.0],
            "measurements": ["bias_current_ua"]})
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["campaign", "--spec", spec, "--json", str(a)]) == 0
        assert main(["campaign", "--builder", "bias", "--corners", "tt",
                     "--temps", "25,85", "--measure", "bias_current_ua",
                     "--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_campaign_malformed_json_one_line_exit_2(self, tmp_path, capsys):
        spec = self._write(tmp_path, "broken.json", '{"builder": "bias",')
        assert main(["campaign", "--spec", spec]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ") and "not valid JSON" in err
        assert err.count("\n") == 1            # exactly one line, no traceback

    def test_campaign_schema_error_one_line_exit_2(self, tmp_path, capsys):
        spec = self._write(tmp_path, "bad.json", {"cornerz": ["tt"]})
        assert main(["campaign", "--spec", spec]) == 2
        err = capsys.readouterr().err
        assert "unknown campaign request key(s)" in err
        assert err.count("\n") == 1

    def test_optimize_spec_file_errors_exit_2(self, tmp_path, capsys):
        for name, payload in (("bad_mode.json", {"mode": "nope"}),
                              ("broken.json", '{"budget":'),
                              ("bad_robust.json",
                               {"robust": {"corners": ["zz"]}})):
            spec = self._write(tmp_path, name, payload)
            assert main(["optimize", "--spec", spec]) == 2
            err = capsys.readouterr().err
            assert err.startswith("error: ") and err.count("\n") == 1

    def test_optimize_spec_file_runs(self, tmp_path, capsys):
        spec = self._write(tmp_path, "opt.json",
                           {"budget": 6, "seed": 11, "mode": "penalty"})
        main(["optimize", "--spec", spec, "--no-progress"])
        out = capsys.readouterr().out
        assert "budget 6 evaluations" in out and "seed=11" in out


class TestStoreCommands:
    def _campaign(self, root, json_path=None):
        args = ["campaign", "--builder", "bias", "--corners", "tt",
                "--temps", "25,85", "--measure", "bias_current_ua",
                "--store", str(root)]
        if json_path is not None:
            args += ["--json", str(json_path)]
        return main(args)

    def test_campaign_store_warm_rerun(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert self._campaign(root, tmp_path / "a.json") == 0
        assert "0 reused, 2 executed" in capsys.readouterr().out
        assert self._campaign(root, tmp_path / "b.json") == 0
        assert "2 reused, 0 executed" in capsys.readouterr().out
        assert (tmp_path / "a.json").read_bytes() == \
            (tmp_path / "b.json").read_bytes()

    def test_store_ls_stat_gc_export(self, tmp_path, capsys):
        root = tmp_path / "store"
        self._campaign(root)
        capsys.readouterr()

        assert main(["store", "ls", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "campaign-unit" in out and "bias" in out

        assert main(["store", "stat", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out

        assert main(["store", "gc", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "2 entries remain" in out

        dump = tmp_path / "dump.json"
        assert main(["store", "export", str(dump), "--store", str(root)]) == 0
        assert "2 entries" in capsys.readouterr().out
        assert dump.exists()

    def test_store_export_cli_round_trips_records(self, tmp_path, capsys):
        """`repro store export` must dump exactly the records a reader
        would get from the store — keys, kinds, meta and bit-exact
        values — so the dump is a faithful offline copy."""
        from repro.store import ResultStore
        from repro.store.backend import _decode

        root = tmp_path / "store"
        self._campaign(root)
        dump = tmp_path / "dump.json"
        assert main(["store", "export", str(dump), "--store", str(root)]) == 0
        capsys.readouterr()

        store = ResultStore(root)
        payload = json.loads(dump.read_text())
        entries = payload["entries"]
        assert len(entries) == 2
        for entry in entries:
            assert entry["kind"] == "campaign-unit"
            assert entry["meta"]["builder"] == "bias"
            assert _decode(entry["record"]) == store.get(entry["key"])

    def test_store_ls_empty(self, tmp_path, capsys):
        assert main(["store", "ls", "--store", str(tmp_path / "empty")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_optimize_verbose_store_stats(self, tmp_path, capsys):
        root = tmp_path / "store"
        args = ["optimize", "--budget", "6", "--seed", "11", "--no-progress",
                "--verbose", "--store", str(root)]
        main(args)
        out = capsys.readouterr().out
        assert "evaluator cache:" in out and "store hits 0" in out
        main(args)
        out = capsys.readouterr().out
        assert "simulated 0" in out


class TestObsCli:
    """`--profile` / `--trace-out` on campaign, and `repro trace`."""

    ARGS = ["campaign", "--builder", "bias", "--corners", "tt",
            "--temps", "25", "--measure", "bias_current_ua"]

    def test_campaign_profile_prints_counters(self, capsys):
        assert main(self.ARGS + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile — counters:" in out
        assert "campaign.batch_groups" in out

    def test_campaign_trace_out_then_trace_renders_tree(self, tmp_path,
                                                        capsys):
        trace_file = tmp_path / "spans.jsonl"
        assert main(self.ARGS + ["--trace-out", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "trace: wrote" in out
        assert trace_file.exists()

        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "span(s) across" in out and "campaign.run" in out

    def test_trace_top_lists_slowest_spans(self, tmp_path, capsys):
        trace_file = tmp_path / "spans.jsonl"
        assert main(self.ARGS + ["--trace-out", str(trace_file)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest 3 spans by self-time:" in out
        assert "self" in out and "total" in out and "trace" in out

    def test_trace_json_round_trips(self, tmp_path, capsys):
        trace_file = tmp_path / "spans.jsonl"
        assert main(self.ARGS + ["--trace-out", str(trace_file)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--json"]) == 0
        spans = json.loads(capsys.readouterr().out)
        assert {s["name"] for s in spans} >= {"campaign.run",
                                              "campaign.chunk"}

    def test_trace_missing_file_exit_2(self, capsys):
        assert main(["trace", "/nonexistent/spans.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_optimize_profile_prints_engine_counters(self, capsys):
        # Exit code reflects the spec verdict (tiny budgets fail Table
        # 1), which is not what this test pins — only the profile dump.
        main(["optimize", "--budget", "4", "--seed", "11",
              "--no-progress", "--profile"])
        out = capsys.readouterr().out
        assert "profile — counters:" in out
        assert "optimize.memo_misses" in out

    def test_campaign_without_flags_stays_silent(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "profile —" not in out and "trace:" not in out
