"""End-to-end integration: the paper's tables and system claims in one place.

These are the tests a reviewer would run first: does the reproduction
meet Table 1, Table 2 and the Eq. 2 system budget, all the way from
transistor models to the sigma-delta output?
"""

import numpy as np
import pytest

from repro.pga.characterize import (
    CharacterizationOptions,
    characterize_mic_amp,
    characterize_power_buffer,
)
from repro.pga.specs import MIC_AMP_SPEC, POWER_BUFFER_SPEC

QUICK = CharacterizationOptions(quick=True)


@pytest.fixture(scope="module")
def table1(tech):
    return characterize_mic_amp(tech, QUICK)


@pytest.fixture(scope="module")
def table2(tech):
    return characterize_power_buffer(tech, QUICK)


class TestTable1:
    def test_every_row_passes(self, table1):
        report = MIC_AMP_SPEC.check(table1)
        assert report.passed, "\n" + report.format()

    def test_headline_noise_close_to_paper(self, table1):
        assert table1["vnin_avg_nv"] == pytest.approx(5.1, rel=0.30)

    def test_iq_close_to_paper(self, table1):
        assert table1["iq_ma"] == pytest.approx(2.6, rel=0.15)

    def test_operates_below_2_6v(self, table1):
        assert table1["supply_min_v"] <= 2.6


class TestTable2:
    def test_every_row_passes(self, table2):
        report = POWER_BUFFER_SPEC.check(table2)
        assert report.passed, "\n" + report.format()

    def test_iq_close_to_paper(self, table2):
        assert table2["iq_ma"] == pytest.approx(3.25, rel=0.30)

    def test_hd_ordering(self, table2):
        """0.3 % HD swing < 0.6 % HD swing, both within a few hundred mV
        of the rails (the paper's 100/300 mV rows)."""
        assert table2["vomax_hd03_vpp_diff"] <= table2["vomax_hd06_vpp_diff"]
        assert table2["vomax_margin_hd06_mv"] < 400.0


class TestSystemBudget:
    def test_full_chain_meets_14_bit_budget(self, tech, mic_amp_noise):
        """Fig. 1 + Eq. 2: microphone amp (measured noise) + sigma-delta
        modulator deliver the psophometric S/N the CODEC needs."""
        from repro.frontend.voice_chain import VoiceChain

        chain = VoiceChain()
        res = chain.run(5, 5.0e-3, mic_amp_noise.freqs, mic_amp_noise.input_psd)
        assert res.snr_psophometric_db > 80.0
        assert not res.clipped

    def test_bias_and_bandgap_feed_consistent_levels(self, tech):
        """The references the front-end distributes: +/-0.6 V and ~20 uA."""
        from repro.circuits.bandgap import build_bandgap
        from repro.circuits.bias import build_bias_circuit
        from repro.spice import dc_operating_point

        bias = build_bias_circuit(tech)
        op_bias = dc_operating_point(bias.circuit)
        assert op_bias.v("iout") / 10e3 == pytest.approx(20e-6, rel=0.15)

        bg = build_bandgap(tech, r2_trim=1.2)
        op_bg = dc_operating_point(bg.circuit)
        assert op_bg.v("vrefp") == pytest.approx(0.6, abs=0.06)
        assert op_bg.v("vrefn") == pytest.approx(-0.6, abs=0.06)

    def test_whole_front_end_within_current_budget(self, table1, table2):
        """Mic amp + buffer together: the battery-life constraint."""
        assert table1["iq_ma"] + table2["iq_ma"] < 7.0
