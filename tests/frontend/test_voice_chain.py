"""Fig. 1 system chain: PGA + sigma-delta + psophometric S/N."""

import numpy as np
import pytest

from repro.frontend.voice_chain import VoiceChain, synthesize_noise


class TestNoiseSynthesis:
    def test_psd_roundtrip(self, rng):
        """Synthesised noise reproduces the requested PSD."""
        freqs = np.array([10.0, 100.0, 1e3, 10e3, 100e3])
        target = 1e-12  # flat 1 uV/rtHz
        psd = np.full_like(freqs, target)
        fs = 1.024e6
        n = 1 << 16
        x = synthesize_noise(freqs, psd, n, fs, rng)
        measured_var = np.var(x)
        expected_var = target * fs / 2  # integrate flat PSD to Nyquist
        assert measured_var == pytest.approx(expected_var, rel=0.1)

    def test_colored_noise_has_more_lf_power(self, rng):
        freqs = np.logspace(1, 5, 40)
        psd = 1e-12 * (1.0 + 1e3 / freqs)  # 1/f + floor
        x = synthesize_noise(freqs, psd, 1 << 15, 1.024e6, rng)
        spec = np.abs(np.fft.rfft(x)) ** 2
        f = np.fft.rfftfreq(1 << 15, 1 / 1.024e6)
        low = spec[(f > 20) & (f < 200)].mean()
        high = spec[(f > 20e3) & (f < 200e3)].mean()
        assert low > 3.0 * high


class TestVoiceChain:
    def test_noiseless_reference_run(self):
        chain = VoiceChain()
        res = chain.run(code=5, mic_rms=4e-3)
        assert res.gain_db == 40.0
        assert res.signal_at_modulator_rms == pytest.approx(0.4, rel=1e-6)
        assert res.snr_db > 70.0
        assert not res.clipped

    def test_clipping_flagged(self):
        chain = VoiceChain()
        res = chain.run(code=5, mic_rms=10e-3)  # 1 Vrms at modulator: clips
        assert res.clipped

    def test_gain_code_tradeoff(self):
        """The hands-free story: a quiet microphone needs the high gain
        code; a loud one must back off to avoid clipping."""
        chain = VoiceChain()
        quiet = chain.sweep_codes(mic_rms=2e-3)
        snrs = [r.snr_db for r in quiet]
        assert np.argmax(snrs) >= 4  # best at the high-gain end
        loud = chain.sweep_codes(mic_rms=120e-3)
        assert loud[-1].clipped
        assert not loud[0].clipped

    def test_amplifier_noise_costs_snr(self, mic_amp_noise):
        """Feeding the PGA's measured noise in must reduce the chain SNR."""
        chain = VoiceChain()
        clean = chain.run(5, 4e-3)
        noisy = chain.run(5, 4e-3, mic_amp_noise.freqs, mic_amp_noise.input_psd)
        assert noisy.snr_psophometric_db < clean.snr_psophometric_db

    def test_eq2_closure(self, mic_amp_noise):
        """THE system result: with the measured amplifier noise at 40 dB
        and a -6 dBFS tone (2nd-order modulators overload above ~-3 dBFS)
        the psophometric S/N sits in the high 70s/low 80s — consistent
        with Eq. 2's 86.5 dB *amplifier* budget once the modulator's own
        quantisation floor is stacked on top.  The amplifier-only margin
        (~88 dB) is checked in the Table 1 characterisation."""
        chain = VoiceChain()
        res = chain.run(5, 3.0e-3, mic_amp_noise.freqs, mic_amp_noise.input_psd)
        assert res.snr_psophometric_db > 76.0
        assert not res.clipped

    def test_requires_freqs_with_psd(self):
        chain = VoiceChain()
        with pytest.raises(ValueError):
            chain.run(5, 1e-3, None, np.array([1e-18]))
