"""Behavioural sigma-delta modulator and decimator."""

import numpy as np
import pytest

from repro.frontend.decimator import decimated_snr, sinc3_decimate, sinc3_kernel
from repro.frontend.sigma_delta import SigmaDeltaModulator, sigma_delta_snr


class TestModulator:
    def test_output_is_binary(self):
        mod = SigmaDeltaModulator()
        bits = mod.run(0.3 * np.sin(np.linspace(0, 20, 4096)))
        assert set(np.unique(bits)) <= {-1.0, 1.0}

    def test_dc_tracking(self):
        """Mean of the bitstream equals the DC input."""
        mod = SigmaDeltaModulator()
        for level in (-0.5, 0.0, 0.4):
            bits = mod.run(np.full(1 << 14, level))
            assert np.mean(bits) == pytest.approx(level, abs=0.01)

    def test_overload_rejected(self):
        mod = SigmaDeltaModulator()
        with pytest.raises(ValueError, match="full scale"):
            mod.run(np.array([1.2]))

    def test_snr_of_second_order_at_osr128(self):
        """2nd order, OSR 128: > 80 dB in the voice band at -6 dBFS."""
        mod = SigmaDeltaModulator()
        snr = sigma_delta_snr(mod, amplitude=0.5, f_signal=1e3,
                              f_sample=128 * 8e3, n_samples=1 << 15)
        assert snr > 80.0

    def test_noise_shaping_pushes_noise_up_in_frequency(self):
        mod = SigmaDeltaModulator()
        rng = np.random.default_rng(5)
        n = 1 << 14
        fs = 1.024e6
        x = 0.4 * np.sin(2 * np.pi * 4e3 * np.arange(n) / fs)
        bits = mod.run(x + rng.normal(0, 1e-5, n))
        spec = np.abs(np.fft.rfft(bits * np.hanning(n))) ** 2
        freqs = np.fft.rfftfreq(n, 1 / fs)
        low = spec[(freqs > 6e3) & (freqs < 20e3)].mean()
        high = spec[(freqs > 200e3) & (freqs < 400e3)].mean()
        assert high > 100.0 * low

    def test_snr_improves_with_signal_level(self):
        mod = SigmaDeltaModulator()
        low = sigma_delta_snr(mod, 0.05, 1e3, 1.024e6, n_samples=1 << 14)
        high = sigma_delta_snr(mod, 0.5, 1e3, 1.024e6, n_samples=1 << 14)
        assert high > low + 10.0


class TestDecimator:
    def test_kernel_dc_gain_is_unity(self):
        kernel = sinc3_kernel(64)
        assert kernel.sum() == pytest.approx(1.0, rel=1e-9)

    def test_kernel_length(self):
        assert len(sinc3_kernel(8)) == 3 * 8 - 2

    def test_rate_reduction(self):
        bits = np.ones(1024)
        pcm = sinc3_decimate(bits, 32)
        assert len(pcm) == len(np.convolve(bits, sinc3_kernel(32), "valid")[::32])
        assert np.allclose(pcm, 1.0)

    def test_rejects_tiny_osr(self):
        with pytest.raises(ValueError):
            sinc3_kernel(1)

    def test_end_to_end_snr(self):
        """Modulate + decimate a -6 dBFS tone: voice-band SNR > 75 dB."""
        mod = SigmaDeltaModulator()
        fs = 128 * 8e3
        n = 1 << 15
        f_tone = 1e3 * round(1e3 * n / fs) * fs / n / 1e3  # coherent-ish
        rng = np.random.default_rng(11)
        x = 0.5 * np.sin(2 * np.pi * f_tone * np.arange(n) / fs)
        bits = mod.run(x + rng.normal(0, 1e-5, n))
        pcm = sinc3_decimate(bits, 128)
        snr = decimated_snr(pcm, f_tone, 8e3)
        assert snr > 75.0
