"""Fig. 1 receive path: D/A -> reconstruction -> measured buffer."""

import numpy as np
import pytest

from repro.frontend.receive_path import ReceivePath, rc_reconstruct, upsample_hold


class TestBlocks:
    def test_upsample_hold_repeats(self):
        out = upsample_hold(np.array([1.0, -1.0]), 4)
        assert out.tolist() == [1.0] * 4 + [-1.0] * 4

    def test_upsample_validates(self):
        with pytest.raises(ValueError):
            upsample_hold(np.array([1.0]), 0)

    def test_rc_smooths_step(self):
        x = np.concatenate([np.zeros(10), np.ones(200)])
        y = rc_reconstruct(x, 256e3, 3.6e3)
        assert y[-1] == pytest.approx(1.0, abs=1e-3)
        assert np.all(np.diff(y[10:]) >= -1e-12)  # monotone rise

    def test_rc_validates(self):
        with pytest.raises(ValueError):
            rc_reconstruct(np.zeros(4), 1e3, 0.0)


class TestPath:
    @pytest.fixture(scope="class")
    def path(self, tech):
        return ReceivePath(tech)

    def test_tone_passes_with_interpolation_droop(self, path):
        m = path.tone_metrics(amplitude=0.5)
        # gain -1 buffer; sinc^3 comb (~ -0.7 dB at 1 kHz) plus the RC
        # pole give a known in-band droop of ~11 %
        assert m["fundamental_vp"] == pytest.approx(0.5 * 0.89, rel=0.05)

    def test_distortion_small_in_linear_region(self, path):
        m = path.tone_metrics(amplitude=0.5)
        assert m["thd_pct"] < 0.5

    def test_hard_clipping_detected(self, path):
        """Overdriving the D/A range clips at the buffer input and the
        distortion measurement catches it."""
        clean = path.tone_metrics(amplitude=1.0)
        clipped = path.tone_metrics(amplitude=3.2)
        assert clipped["thd_pct"] > 10.0 * clean["thd_pct"]

    def test_snr_reasonable(self, path):
        m = path.tone_metrics(amplitude=0.5)
        assert m["snr_db"] > 40.0

    def test_transfer_cached(self, path):
        t1 = path.buffer_transfer()
        t2 = path.buffer_transfer()
        assert t1 is t2
