"""Spec tables and compliance reports."""

import pytest

from repro.pga.specs import (
    Bound,
    MIC_AMP_SPEC,
    POWER_BUFFER_SPEC,
    Spec,
    SpecError,
    SpecLimit,
)


class TestBounds:
    def test_min(self):
        limit = SpecLimit("m", Bound.MIN, 10.0, "x")
        assert limit.check(11.0) and not limit.check(9.0)

    def test_max(self):
        limit = SpecLimit("m", Bound.MAX, 10.0, "x")
        assert limit.check(9.0) and not limit.check(11.0)

    def test_abs_max(self):
        limit = SpecLimit("m", Bound.ABS_MAX, 0.05, "dB")
        assert limit.check(-0.04) and not limit.check(-0.06)

    def test_range(self):
        limit = SpecLimit("m", Bound.RANGE, (1.0, 2.0), "x")
        assert limit.check(1.5) and not limit.check(2.5)

    def test_info_never_fails(self):
        limit = SpecLimit("m", Bound.INFO, 0.0, "x")
        assert limit.check(1e9)

    def test_value_exactly_at_limit_passes(self):
        """Boundary semantics: every bound is inclusive."""
        assert SpecLimit("m", Bound.MIN, 10.0, "x").check(10.0)
        assert SpecLimit("m", Bound.MAX, 10.0, "x").check(10.0)
        assert SpecLimit("m", Bound.ABS_MAX, 0.05, "dB").check(0.05)
        assert SpecLimit("m", Bound.ABS_MAX, 0.05, "dB").check(-0.05)
        limit = SpecLimit("m", Bound.RANGE, (1.0, 2.0), "x")
        assert limit.check(1.0) and limit.check(2.0)

    def test_value_just_past_limit_fails(self):
        eps = 1e-12
        assert not SpecLimit("m", Bound.MIN, 10.0, "x").check(10.0 - eps)
        assert not SpecLimit("m", Bound.MAX, 10.0, "x").check(10.0 + eps)
        assert not SpecLimit("m", Bound.ABS_MAX, 0.05, "dB").check(0.05 + eps)
        limit = SpecLimit("m", Bound.RANGE, (1.0, 2.0), "x")
        assert not limit.check(1.0 - eps) and not limit.check(2.0 + eps)


class TestReports:
    def test_passing_report(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),))
        report = spec.check({"a": 0.5})
        assert report.passed
        assert "PASS" in report.format()

    def test_failing_report_lists_failures(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),
                             SpecLimit("b", Bound.MIN, 1.0, "V")))
        report = spec.check({"a": 2.0, "b": 2.0})
        assert not report.passed
        assert len(report.failures) == 1
        assert report.failures[0].limit.metric == "a"

    def test_missing_metric_skipped_by_default(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),))
        report = spec.check({})
        assert report.rows == []
        assert report.passed  # vacuous

    def test_missing_metric_strict_raises_spec_error(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),))
        with pytest.raises(SpecError) as exc:
            spec.check({}, strict=True)
        assert exc.value.missing == ["a"]
        assert exc.value.failures == []

    def test_strict_lists_every_failing_row(self):
        spec = Spec("demo", (
            SpecLimit("a", Bound.MAX, 1.0, "V"),
            SpecLimit("b", Bound.MIN, 1.0, "V"),
            SpecLimit("c", Bound.ABS_MAX, 0.1, "dB"),
            SpecLimit("d", Bound.INFO, 0.0, "x"),
        ))
        with pytest.raises(SpecError) as exc:
            spec.check({"a": 2.0, "b": 0.5, "c": 0.05}, strict=True)
        err = exc.value
        assert [row.limit.metric for row in err.failures] == ["a", "b"]
        assert err.missing == []
        text = str(err)
        assert "a" in text and "b" in text and "FAIL" in text

    def test_strict_reports_failures_and_missing_together(self):
        spec = Spec("demo", (
            SpecLimit("a", Bound.MAX, 1.0, "V"),
            SpecLimit("gone", Bound.MIN, 5.0, "V"),
        ))
        with pytest.raises(SpecError) as exc:
            spec.check({"a": 2.0}, strict=True)
        assert [row.limit.metric for row in exc.value.failures] == ["a"]
        assert exc.value.missing == ["gone"]
        assert "missing" in str(exc.value)

    def test_strict_missing_info_row_is_fine(self):
        spec = Spec("demo", (
            SpecLimit("a", Bound.MAX, 1.0, "V"),
            SpecLimit("fyi", Bound.INFO, 0.0, "x"),
        ))
        report = spec.check({"a": 0.5}, strict=True)  # must not raise
        assert report.passed

    def test_strict_passing_check_returns_report(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),))
        report = spec.check({"a": 0.5}, strict=True)
        assert report.passed and len(report.rows) == 1


class TestPaperTables:
    def test_table1_has_the_paper_rows(self):
        metrics = {l.metric for l in MIC_AMP_SPEC.limits}
        assert {"snr_40db_db", "vnin_300hz_nv", "vnin_1khz_nv", "vnin_avg_nv",
                "hd_0v2_db", "gain_error_db", "psrr_1khz_db", "iq_ma"} <= metrics

    def test_table2_has_the_paper_rows(self):
        metrics = {l.metric for l in POWER_BUFFER_SPEC.limits}
        assert {"iq_ma", "psrr_1khz_db", "slew_v_per_us",
                "vomax_margin_hd06_mv", "vomax_margin_hd03_mv"} <= metrics

    def test_table1_noise_limits_match_paper(self):
        by_name = {l.metric: l for l in MIC_AMP_SPEC.limits}
        assert by_name["vnin_300hz_nv"].limit == 7.0
        assert by_name["vnin_1khz_nv"].limit == 6.0
        assert by_name["iq_ma"].limit == 2.6

    def test_table2_iq_range_centred_on_3_25(self):
        by_name = {l.metric: l for l in POWER_BUFFER_SPEC.limits}
        lo, hi = by_name["iq_ma"].limit
        assert (lo + hi) / 2 == pytest.approx(3.25)
