"""Spec tables and compliance reports."""

import pytest

from repro.pga.specs import (
    Bound,
    MIC_AMP_SPEC,
    POWER_BUFFER_SPEC,
    Spec,
    SpecLimit,
)


class TestBounds:
    def test_min(self):
        limit = SpecLimit("m", Bound.MIN, 10.0, "x")
        assert limit.check(11.0) and not limit.check(9.0)

    def test_max(self):
        limit = SpecLimit("m", Bound.MAX, 10.0, "x")
        assert limit.check(9.0) and not limit.check(11.0)

    def test_abs_max(self):
        limit = SpecLimit("m", Bound.ABS_MAX, 0.05, "dB")
        assert limit.check(-0.04) and not limit.check(-0.06)

    def test_range(self):
        limit = SpecLimit("m", Bound.RANGE, (1.0, 2.0), "x")
        assert limit.check(1.5) and not limit.check(2.5)

    def test_info_never_fails(self):
        limit = SpecLimit("m", Bound.INFO, 0.0, "x")
        assert limit.check(1e9)


class TestReports:
    def test_passing_report(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),))
        report = spec.check({"a": 0.5})
        assert report.passed
        assert "PASS" in report.format()

    def test_failing_report_lists_failures(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),
                             SpecLimit("b", Bound.MIN, 1.0, "V")))
        report = spec.check({"a": 2.0, "b": 2.0})
        assert not report.passed
        assert len(report.failures) == 1
        assert report.failures[0].limit.metric == "a"

    def test_missing_metric_skipped_by_default(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),))
        report = spec.check({})
        assert report.rows == []
        assert report.passed  # vacuous

    def test_missing_metric_strict_raises(self):
        spec = Spec("demo", (SpecLimit("a", Bound.MAX, 1.0, "V"),))
        with pytest.raises(KeyError):
            spec.check({}, strict=True)


class TestPaperTables:
    def test_table1_has_the_paper_rows(self):
        metrics = {l.metric for l in MIC_AMP_SPEC.limits}
        assert {"snr_40db_db", "vnin_300hz_nv", "vnin_1khz_nv", "vnin_avg_nv",
                "hd_0v2_db", "gain_error_db", "psrr_1khz_db", "iq_ma"} <= metrics

    def test_table2_has_the_paper_rows(self):
        metrics = {l.metric for l in POWER_BUFFER_SPEC.limits}
        assert {"iq_ma", "psrr_1khz_db", "slew_v_per_us",
                "vomax_margin_hd06_mv", "vomax_margin_hd03_mv"} <= metrics

    def test_table1_noise_limits_match_paper(self):
        by_name = {l.metric: l for l in MIC_AMP_SPEC.limits}
        assert by_name["vnin_300hz_nv"].limit == 7.0
        assert by_name["vnin_1khz_nv"].limit == 6.0
        assert by_name["iq_ma"].limit == 2.6

    def test_table2_iq_range_centred_on_3_25(self):
        by_name = {l.metric: l for l in POWER_BUFFER_SPEC.limits}
        lo, hi = by_name["iq_ma"].limit
        assert (lo + hi) / 2 == pytest.approx(3.25)
