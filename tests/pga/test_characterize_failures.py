"""Failure-classification regression for the minimum-supply search.

``gain_holds_at_supply`` historically swallowed *every* exception as
"the circuit does not operate at this supply", so an infrastructure
fault (OOM, a typo-level ``TypeError``) silently skewed the reported
``supply_min_v`` threshold.  It now catches exactly the numeric
failure taxonomy (:data:`repro.faults.NUMERIC_FAILURES`) and lets
everything else propagate.
"""

import pytest

from repro.faults import NUMERIC_FAILURES
from repro.pga import characterize as C
from repro.spice.dc import ConvergenceError


class TestGainHoldsAtSupply:
    def _patch_build(self, monkeypatch, exc: BaseException):
        def explode(*args, **kwargs):
            raise exc
        monkeypatch.setattr(C, "build_mic_amp", explode)

    @pytest.mark.parametrize("exc", [
        ConvergenceError("no operating point"),
        ValueError("math domain error"),
        ZeroDivisionError("division by zero"),      # ArithmeticError
    ])
    def test_numeric_failures_mean_does_not_operate(self, monkeypatch, exc):
        assert isinstance(exc, NUMERIC_FAILURES)
        self._patch_build(monkeypatch, exc)
        tech = object()                             # never reached past build
        assert C.gain_holds_at_supply(tech, 2.0, 32.0) is False

    @pytest.mark.parametrize("exc", [
        MemoryError(),
        OSError("disk I/O error"),
        TypeError("build_mic_amp() got an unexpected keyword argument"),
    ])
    def test_infrastructure_failures_propagate(self, monkeypatch, exc):
        assert not isinstance(exc, NUMERIC_FAILURES)
        self._patch_build(monkeypatch, exc)
        with pytest.raises(type(exc)):
            C.gain_holds_at_supply(object(), 2.0, 32.0)

    def test_real_probe_still_works(self, tech):
        # at a generous supply the 40 dB setting holds its nominal gain
        assert C.gain_holds_at_supply(tech, 3.0, 32.0, tol_db=60.0) is True
