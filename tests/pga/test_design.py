"""The executable Sec. 3.2 sizing methodology."""

import pytest

from repro.analysis.dynamic_range import VoiceBandBudget
from repro.circuits.micamp import MicAmpSizes
from repro.pga.design import (
    BudgetSplit,
    derive_mic_amp_sizing,
    gain_control_for_sizing,
    sizing_to_mic_amp_sizes,
)


class TestSizingWalk:
    @pytest.fixture(scope="class")
    def sizing(self, tech):
        return derive_mic_amp_sizing(tech)

    def test_target_is_eq2(self, sizing):
        assert sizing.target_density * 1e9 == pytest.approx(5.1, abs=0.05)

    def test_predicted_meets_target_with_margin(self, sizing):
        assert sizing.predicted_avg_nv <= sizing.target_density * 1e9 * 1.05

    def test_input_gm_in_millisiemens_range(self, sizing):
        """The headline requirement lands at a few mS per device."""
        assert 2e-3 < sizing.gm_input < 8e-3

    def test_derived_sizes_near_shipped_defaults(self, sizing):
        """The shipped MicAmpSizes follow from the methodology (within
        engineering rounding)."""
        defaults = MicAmpSizes()
        assert sizing.w_over_l_input == pytest.approx(
            defaults.w_input / defaults.l_input, rel=0.5
        )
        assert sizing.r_a_max == pytest.approx(250.0, rel=0.5)
        assert sizing.r_switch_on == pytest.approx(defaults.r_switch_on, rel=0.7)

    def test_gate_area_large(self, sizing):
        """'A relatively large area ... [is] needed to achieve the noise
        requirements': tens of thousands of square microns per device."""
        assert sizing.gate_area_input_um2 > 10e3

    def test_load_gm_below_input_gm(self, sizing):
        assert sizing.gm_load < 0.8 * sizing.gm_input

    def test_conversion_helpers(self, sizing):
        sizes = sizing_to_mic_amp_sizes(sizing)
        assert sizes.w_input == pytest.approx(sizing.w_input)
        gc = gain_control_for_sizing(sizing)
        assert gc.r_total == pytest.approx(sizing.r_total)


class TestBudgetSplit:
    def test_default_split_sums_below_one(self):
        assert BudgetSplit().total() <= 1.0

    def test_oversubscribed_split_rejected(self, tech):
        bad = BudgetSplit(input_thermal=0.9, load_thermal=0.5)
        with pytest.raises(ValueError, match="budget split"):
            derive_mic_amp_sizing(tech, split=bad)

    def test_tighter_spec_needs_more_gm(self, tech):
        loose = derive_mic_amp_sizing(tech, budget=VoiceBandBudget(snr_db=80.0))
        tight = derive_mic_amp_sizing(tech, budget=VoiceBandBudget(snr_db=90.0))
        assert tight.gm_input > loose.gm_input

    def test_twelve_bit_variant_is_smaller(self, tech):
        """A 12-bit front-end (the 'extension' use case) needs an order
        of magnitude less gm and area."""
        twelve_bit = VoiceBandBudget(snr_db=74.0)
        sizing = derive_mic_amp_sizing(tech, budget=twelve_bit)
        nominal = derive_mic_amp_sizing(tech)
        assert sizing.gm_input < 0.2 * nominal.gm_input
        assert sizing.r_a_max > 3.0 * nominal.r_a_max


class TestBuiltFromSizing(object):
    def test_derived_amp_meets_derived_target(self, tech):
        """Close the loop: build an amplifier from the sizing walk and
        verify its simulated noise meets the analytic prediction."""
        import numpy as np

        from repro.circuits.micamp import build_mic_amp
        from repro.spice.analysis import log_freqs
        from repro.spice.dc import dc_operating_point
        from repro.spice.noise import noise_analysis

        sizing = derive_mic_amp_sizing(tech)
        sizes = sizing_to_mic_amp_sizes(sizing)
        gc = gain_control_for_sizing(sizing)
        design = build_mic_amp(tech, gain_code=gc.num_codes - 1,
                               sizes=sizes, gain=gc)
        op = dc_operating_point(design.circuit)
        nr = noise_analysis(op, log_freqs(100, 50e3, 8), "outp", "outn")
        measured = nr.average_input_density(300, 3400) * 1e9
        assert measured == pytest.approx(sizing.predicted_avg_nv, rel=0.3)
