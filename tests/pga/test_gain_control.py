"""Gain-word logic (Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import undb
from repro.pga.gain_control import GAIN_STEPS_DB, GainControl


class TestCodes:
    def test_paper_steps(self):
        assert GAIN_STEPS_DB == (10.0, 16.0, 22.0, 28.0, 34.0, 40.0)

    def test_gain_linear(self):
        gc = GainControl()
        assert gc.gain_linear(5) == pytest.approx(100.0)
        assert gc.gain_linear(0) == pytest.approx(undb(10.0))

    def test_code_for_db(self):
        gc = GainControl()
        assert gc.code_for_db(40.0) == 5
        assert gc.code_for_db(23.5) == 2

    def test_code_validation(self):
        gc = GainControl()
        with pytest.raises(ValueError):
            gc.gain_db(6)
        with pytest.raises(ValueError):
            gc.gain_db(-1)


class TestResistorString:
    def test_segments_sum_to_total(self):
        gc = GainControl(r_total=25e3)
        assert sum(gc.segment_resistances()) == pytest.approx(25e3, rel=1e-12)

    def test_all_segments_positive(self):
        for seg in GainControl().segment_resistances():
            assert seg > 0.0

    def test_r_bottom_for_40db(self):
        gc = GainControl(r_total=25e3)
        assert gc.r_bottom(5) == pytest.approx(250.0)

    def test_r_bottom_plus_r_top_is_total(self):
        gc = GainControl()
        for code in range(gc.num_codes):
            assert gc.r_bottom(code) + gc.r_top(code) == pytest.approx(gc.r_total)

    def test_switch_states_one_hot(self):
        gc = GainControl()
        for code in range(gc.num_codes):
            states = gc.switch_states(code)
            assert sum(states) == 1

    def test_switch_states_distinct(self):
        gc = GainControl()
        seen = {tuple(gc.switch_states(code)) for code in range(gc.num_codes)}
        assert len(seen) == gc.num_codes

    def test_noise_source_resistance_largest_mid_gain(self):
        """R_a||R_f peaks at the low-gain end: Eq. 4's worst case."""
        gc = GainControl()
        r = [gc.noise_source_resistance(code) for code in range(6)]
        assert r[0] == max(r)
        assert r[5] == min(r)

    @given(st.floats(min_value=1e3, max_value=1e6))
    @settings(max_examples=20, deadline=None)
    def test_segments_consistent_for_any_total(self, r_total):
        gc = GainControl(r_total=r_total)
        segs = gc.segment_resistances()
        assert all(s > 0 for s in segs)
        assert sum(segs) == pytest.approx(r_total, rel=1e-9)

    @given(st.lists(st.floats(min_value=1.0, max_value=60.0),
                    min_size=2, max_size=8, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_monotone_step_tables(self, steps):
        steps = tuple(sorted(steps))
        gc = GainControl(steps_db=steps)
        segs = gc.segment_resistances()
        assert all(s > 0 for s in segs)
        assert sum(segs) == pytest.approx(gc.r_total, rel=1e-9)

    def test_step_errors_helper(self):
        gc = GainControl()
        measured = [10.0, 16.1, 22.0, 27.9, 34.0, 40.0]
        errors = gc.step_errors_db(measured)
        assert errors[0] == pytest.approx(0.1)
        assert errors[1] == pytest.approx(-0.1)
        with pytest.raises(ValueError):
            gc.step_errors_db([10.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            GainControl(r_total=-1.0)
        with pytest.raises(ValueError):
            GainControl(steps_db=(10.0,))
        with pytest.raises(ValueError):
            GainControl(steps_db=(10.0, 10.0))
