"""Area model (Figs. 6 and 10)."""

import pytest

from repro.layout.area import estimate_area_mm2, estimate_mic_amp_area_mm2
from repro.spice import Circuit


class TestAreaModel:
    def test_mic_amp_near_paper_1_1_mm2(self, mic_amp_40db):
        """Fig. 6: the paper reports 1.1 mm^2; the model should land in
        the same regime (the big input devices + compensation caps)."""
        area = estimate_mic_amp_area_mm2(mic_amp_40db)
        assert 0.5 < area < 2.0

    def test_input_devices_dominate_mos_area(self, mic_amp_40db, tech):
        bd = estimate_area_mm2(mic_amp_40db.circuit, tech)
        input_area = sum(bd.per_device[t] for t in ("t1", "t2", "t3", "t4"))
        assert input_area > 0.4 * bd.mosfets

    def test_external_load_caps_excluded(self, tech):
        ckt = Circuit("c")
        ckt.capacitor("cload", "a", "gnd", 100e-9)  # external 100 nF
        ckt.capacitor("cc", "a", "gnd", 10e-12)     # on-chip 10 pF
        bd = estimate_area_mm2(ckt, tech)
        assert "cload" not in bd.per_device
        assert "cc" in bd.per_device

    def test_startup_and_tie_resistors_excluded(self, tech):
        ckt = Circuit("c")
        ckt.resistor("rstart", "a", "b", 3.3e6)
        ckt.resistor("rtie", "b", "c", 1.0, noisy=False)
        ckt.resistor("rpoly", "c", "gnd", 10e3)
        bd = estimate_area_mm2(ckt, tech)
        assert list(bd.per_device) == ["rpoly"]

    def test_breakdown_totals(self, mic_amp_40db, tech):
        bd = estimate_area_mm2(mic_amp_40db.circuit, tech)
        assert bd.raw_um2 == pytest.approx(
            bd.mosfets + bd.resistors + bd.capacitors
        )
        assert bd.total_um2 == pytest.approx(bd.raw_um2 * bd.overhead_factor)
        assert "mm^2" in bd.format()

    def test_buffer_smaller_than_mic_amp(self, mic_amp_40db, buffer_inverting, tech):
        """Fig. 10 vs Fig. 6: the buffer has no giant low-noise devices."""
        mic = estimate_area_mm2(mic_amp_40db.circuit, tech).total_mm2
        buf = estimate_area_mm2(buffer_inverting.circuit, tech).total_mm2
        assert buf < mic
