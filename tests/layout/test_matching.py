"""Placement-aware matching and the offset/dynamic-range link."""

import pytest

from repro.layout.common_centroid import Placement, common_centroid_pattern
from repro.layout.matching import (
    dynamic_range_loss_db,
    placement_sigma_vt,
    worst_case_offset,
)

import numpy as np


class TestPlacementSigma:
    def test_common_centroid_removes_gradient_term(self, tech):
        quad = common_centroid_pattern(2, 4)
        res = placement_sigma_vt(tech, quad, 7200e-6, 8e-6)
        assert res["gradient_worst_v"] == pytest.approx(0.0, abs=1e-12)
        assert res["combined_v"] == pytest.approx(res["sigma_random_v"], rel=1e-9)

    def test_naive_placement_pays_gradient(self, tech):
        naive = Placement(np.array([[0, 0, 1, 1]]), 2)
        res = placement_sigma_vt(tech, naive, 7200e-6, 8e-6)
        assert res["gradient_worst_v"] > 0.0
        assert res["combined_v"] > res["sigma_random_v"]

    def test_large_devices_match_better(self, tech):
        quad = common_centroid_pattern(2, 4)
        big = placement_sigma_vt(tech, quad, 7200e-6, 8e-6)
        small = placement_sigma_vt(tech, quad, 72e-6, 2e-6)
        assert big["sigma_random_v"] < small["sigma_random_v"]

    def test_mic_amp_input_pair_offset_sub_mv(self, tech):
        """The shipped input quad: sigma(dVT) well below 1 mV."""
        quad = common_centroid_pattern(2, 4)
        res = placement_sigma_vt(tech, quad, 7200e-6, 8e-6)
        assert res["combined_v"] < 1e-3


class TestOffsetBudget:
    def test_offset_amplified_by_gain(self):
        assert worst_case_offset(1e-3, 40.0) == pytest.approx(0.3, rel=1e-6)
        assert worst_case_offset(1e-3, 20.0) == pytest.approx(0.03, rel=1e-6)

    def test_dynamic_range_loss_monotone(self):
        assert dynamic_range_loss_db(0.0) == pytest.approx(0.0, abs=1e-9)
        assert dynamic_range_loss_db(0.3) > dynamic_range_loss_db(0.1)

    def test_intro_argument_quantified(self, tech):
        """The introduction's warning: a poorly matched (small, naive)
        input pair at 40 dB costs real modulator dynamic range; the
        shipped quad does not."""
        naive = Placement(np.array([[0, 0, 1, 1]]), 2)
        bad = placement_sigma_vt(tech, naive, 72e-6, 2e-6)
        bad_loss = dynamic_range_loss_db(worst_case_offset(bad["combined_v"]))
        quad = common_centroid_pattern(2, 4)
        good = placement_sigma_vt(tech, quad, 7200e-6, 8e-6)
        good_loss = dynamic_range_loss_db(worst_case_offset(good["combined_v"]))
        assert bad_loss > 10.0 * good_loss
        assert good_loss < 1.0
