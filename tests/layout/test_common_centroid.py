"""Common-centroid placement and gradient immunity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layout.common_centroid import (
    Placement,
    common_centroid_pattern,
    gradient_imbalance,
    interdigitated_pattern,
    worst_gradient_imbalance,
)


class TestPatterns:
    def test_cross_coupled_quad_has_zero_imbalance(self):
        p = common_centroid_pattern(2, 4)
        assert worst_gradient_imbalance(p) == pytest.approx(0.0, abs=1e-12)

    def test_two_by_two_quad(self):
        p = common_centroid_pattern(2, 2)
        assert gradient_imbalance(p, (1, 0)) == pytest.approx(0.0, abs=1e-12)
        assert gradient_imbalance(p, (0, 1)) == pytest.approx(0.0, abs=1e-12)

    def test_naive_side_by_side_has_imbalance(self):
        """The layout the paper's rules forbid: A A B B."""
        naive = Placement(np.array([[0, 0, 1, 1]]), 2)
        assert gradient_imbalance(naive, (0, 1)) == pytest.approx(2.0)

    def test_interdigitated_abba(self):
        p = interdigitated_pattern(2, 2)
        assert p.grid.tolist() == [[0, 1, 1, 0]]
        assert gradient_imbalance(p, (0, 1)) == pytest.approx(0.0, abs=1e-12)

    def test_interdigitated_beats_naive(self):
        naive = Placement(np.array([[0] * 4 + [1] * 4]), 2)
        inter = interdigitated_pattern(2, 4)
        assert (gradient_imbalance(inter, (0, 1))
                < gradient_imbalance(naive, (0, 1)))

    def test_general_pattern_covers_all_devices(self):
        p = common_centroid_pattern(4, 4)
        for d in range(4):
            assert len(p.units_of(d)) == 4

    @given(n=st.integers(min_value=2, max_value=5),
           units=st.sampled_from([2, 4, 6]))
    @settings(max_examples=15, deadline=None)
    def test_mirrored_blocks_cancel_gradients(self, n, units):
        p = common_centroid_pattern(n, units)
        assert worst_gradient_imbalance(p) < 1e-9


class TestValidation:
    def test_grid_must_reference_all_devices(self):
        with pytest.raises(ValueError, match="expected"):
            Placement(np.array([[0, 0, 0, 0]]), 2)

    def test_odd_units_rejected(self):
        with pytest.raises(ValueError, match="even"):
            common_centroid_pattern(2, 3)

    def test_zero_direction_rejected(self):
        p = common_centroid_pattern(2, 4)
        with pytest.raises(ValueError):
            gradient_imbalance(p, (0.0, 0.0))

    def test_centroid_of_missing_device(self):
        p = common_centroid_pattern(2, 4)
        with pytest.raises(ValueError):
            p.centroid(7)
