.SUBCKT CLOCKED_COMPARATOR INP INN CLK CLK_DLY OUTP OUTN VDD VSS
* --- Stage 1: Preamplifier (Left Side) ---
* Tail NMOS
XM_TAIL1 VGND1 CLK VSS VSS nmos_rvt w=540n l=14n nf=2
* Input Differential Pair
XM_DP1 OUTN INP VGND1 VSS nmos_rvt w=540n l=14n nf=2
XM_DP2 OUTP INN VGND1 VSS nmos_rvt w=540n l=14n nf=2
* PMOS Active Loads (Gates tied to VSS to stay ON)
XM_LOAD1 OUTN VSS VDD VDD pmos_rvt w=270n l=14n nf=2
XM_LOAD2 OUTP VSS VDD VDD pmos_rvt w=270n l=14n nf=2

* --- Stage 2: Cross-Coupled Latch (Right Side) ---
* Latch Tail NMOS
XM_TAIL2 VGND2 CLK_DLY VSS VSS nmos_rvt w=540n l=14n nf=2
* Cross-Coupled NMOS
XM_N1 OUTP OUTN VGND2 VSS nmos_rvt w=540n l=14n nf=2
XM_N2 OUTN OUTP VGND2 VSS nmos_rvt w=540n l=14n nf=2
* Cross-Coupled PMOS
XM_P1 OUTP OUTN VDD VDD pmos_rvt w=270n l=14n nf=2
XM_P2 OUTN OUTP VDD VDD pmos_rvt w=270n l=14n nf=2
.ENDS
