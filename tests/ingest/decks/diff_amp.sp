* Simple 5-Transistor OTA (Differential Pair with Current Mirror Load)
* Topology: PMOS current mirror load + NMOS diff pair + NMOS tail current source
*
* Ports: inp inn vout ibias vdd vss
*   inp/inn  : differential inputs
*   vout     : single-ended output
*   ibias    : bias voltage for tail current source
*   vdd/vss  : supply rails

.subckt diff_amp inp inn vout ibias vdd vss
* PMOS current mirror load (matched pair)
mp1 vout  vout vdd vdd pmos_rvt w=540e-9 l=20e-9 nfin=8 nf=2
mp2 net1  vout vdd vdd pmos_rvt w=540e-9 l=20e-9 nfin=8 nf=2
* NMOS differential input pair (matched pair)
mn1 vout  inp  tail vss nmos_rvt w=540e-9 l=20e-9 nfin=8 nf=2
mn2 net1  inn  tail vss nmos_rvt w=540e-9 l=20e-9 nfin=8 nf=2
* NMOS tail current source (single device, no match needed)
mn3 tail  ibias vss vss nmos_rvt w=270e-9 l=20e-9 nfin=4 nf=2
.ends diff_amp
