.SUBCKT OTA_5T vin+ vin- vout vdd vss
* Differential Pair
XM1 node_x vin+ node_tail vss nmos_rvt w=270n l=14n nf=2
XM2 vout   vin- node_tail vss nmos_rvt w=270n l=14n nf=2
* Tail Current Source
XM5 node_tail vb1 vss vss nmos_rvt w=540n l=14n nf=4
* Active Load (Current Mirror)
XM3 node_x node_x vdd vdd pmos_rvt w=540n l=14n nf=4
XM4 vout   node_x vdd vdd pmos_rvt w=540n l=14n nf=4
.ENDS
