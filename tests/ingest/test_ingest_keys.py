"""Store-key stability for ingested decks.

The ``ingested`` builder's kwargs carry the canonical flattened deck and
the canonical binding JSON, so unit keys are content-addressed on the
*circuit*: textual variants of the same deck coalesce, and a separate
interpreter reproduces the same keys bit for bit (no hash-seed or id()
leakage through the canonicalisation pipeline).
"""

import json
import pathlib
import subprocess
import sys

from repro.campaign import CampaignSpec
from repro.ingest import canonical_binding, canonicalize_deck
from repro.store import UnitKeyer, campaign_key

DECK_DIR = pathlib.Path(__file__).parent / "decks"


def ingested_spec(deck_text: str, binding_text: str) -> CampaignSpec:
    return CampaignSpec(
        builder="ingested", corners=("tt", "ss"), temps_c=(25.0, 85.0),
        seeds=(None,), gain_codes=(None,),
        measurements=("offset_v", "iq_ma", "gain_1khz_db"),
        builder_kwargs={
            "netlist": canonicalize_deck(deck_text, name="netlist"),
            "binding": canonical_binding(binding_text),
        },
    )


_SUBPROCESS_SCRIPT = """
import json, pathlib
from repro.campaign import CampaignSpec
from repro.ingest import canonical_binding, canonicalize_deck
from repro.store import UnitKeyer, campaign_key

deck_dir = pathlib.Path({deck_dir!r})
spec = CampaignSpec(
    builder="ingested", corners=("tt", "ss"), temps_c=(25.0, 85.0),
    seeds=(None,), gain_codes=(None,),
    measurements=("offset_v", "iq_ma", "gain_1khz_db"),
    builder_kwargs={{
        "netlist": canonicalize_deck((deck_dir / "ota_5t.sp").read_text(),
                                     name="netlist"),
        "binding": canonical_binding(
            (deck_dir / "ota_5t.binding.json").read_text()),
    }},
)
keyer = UnitKeyer(spec)
print(json.dumps({{"campaign": campaign_key(spec),
                   "units": [keyer.key(u) for u in spec.expand()]}}))
"""


class TestIngestedKeys:
    def test_subprocess_reproduces_keys(self):
        spec = ingested_spec((DECK_DIR / "ota_5t.sp").read_text(),
                             (DECK_DIR / "ota_5t.binding.json").read_text())
        proc = subprocess.run(
            [sys.executable, "-c",
             _SUBPROCESS_SCRIPT.format(deck_dir=str(DECK_DIR))],
            capture_output=True, text=True, check=True,
        )
        remote = json.loads(proc.stdout)
        keyer = UnitKeyer(spec)
        assert remote["campaign"] == campaign_key(spec)
        assert remote["units"] == [keyer.key(u) for u in spec.expand()]

    def test_textual_variants_coalesce(self):
        """Comments, case and whitespace must not move a single key."""
        text = (DECK_DIR / "ota_5t.sp").read_text()
        binding = (DECK_DIR / "ota_5t.binding.json").read_text()
        noisy = "* resubmitted\n" + text.upper().replace("  ", " ")
        rekeyed_binding = json.dumps(
            dict(reversed(list(json.loads(binding).items()))))
        a = ingested_spec(text, binding)
        b = ingested_spec(noisy, rekeyed_binding)
        keyer_a, keyer_b = UnitKeyer(a), UnitKeyer(b)
        assert campaign_key(a) == campaign_key(b)
        assert [keyer_a.key(u) for u in a.expand()] == \
            [keyer_b.key(u) for u in b.expand()]

    def test_different_deck_moves_keys(self):
        text = (DECK_DIR / "ota_5t.sp").read_text()
        binding = (DECK_DIR / "ota_5t.binding.json").read_text()
        a = ingested_spec(text, binding)
        b = ingested_spec(text.replace("w=270n", "w=280n"), binding)
        assert campaign_key(a) != campaign_key(b)
