"""Flattening contracts: name mangling, top selection, determinism.

Store keys hash the canonical flattened deck, so elaboration must be a
pure function of the deck text: element insertion order follows card
order depth-first, instance internals get a ``<instance>.`` prefix, and
``Circuit.nodes()`` sorts.  These tests pin that contract.
"""

import pathlib

import pytest

from repro.ingest import IngestError, canonicalize_deck, compile_deck
from repro.spice.elements import Mosfet, Resistor

DECK_DIR = pathlib.Path(__file__).parent / "decks"
EXEMPLARS = ("ota_5t.sp", "diff_amp.sp", "clocked_comparator.sp")

HIER = """\
.subckt half a b
r1 a mid 1k
r2 mid b 2k
.ends
x1 in n1 half
x2 n1 0 half
v1 in 0 dc 1
"""


class TestFlattening:
    def test_instance_prefixes(self):
        circuit = compile_deck(HIER, name="t").circuit
        for name in ("x1.r1", "x1.r2", "x2.r1", "x2.r2", "v1"):
            assert isinstance(circuit.element(name), (Resistor, object))
        assert isinstance(circuit.element("x1.r1"), Resistor)

    def test_ports_map_positionally(self):
        circuit = compile_deck(HIER, name="t").circuit
        nodes = circuit.nodes()
        # Ports alias the parent nets; only internals are mangled.
        assert "x1.mid" in nodes and "x2.mid" in nodes
        assert "x1.a" not in nodes and "x1.b" not in nodes
        assert "in" in nodes and "n1" in nodes

    def test_nodes_sorted(self):
        nodes = compile_deck(HIER, name="t").circuit.nodes()
        assert nodes == sorted(nodes)

    def test_element_order_follows_cards_depth_first(self):
        names = [el.name for el in compile_deck(HIER, name="t").circuit]
        assert names == ["x1.r1", "x1.r2", "x2.r1", "x2.r2", "v1"]

    def test_canonical_is_deterministic(self):
        assert canonicalize_deck(HIER, name="t") == \
            canonicalize_deck(HIER, name="t")

    def test_canonical_ignores_formatting(self):
        noisy = "* a comment\n" + HIER.upper().replace("R1 A MID 1K",
                                                       "R1  A  MID  1K")
        assert canonicalize_deck(noisy, name="t") == \
            canonicalize_deck(HIER, name="t")

    def test_nested_instances_stack_prefixes(self):
        text = (".subckt leaf p\nr1 p 0 1k\n.ends\n"
                ".subckt mid q\nx9 q leaf\n.ends\n"
                "xa n1 mid\nv1 n1 0 dc 1\n")
        circuit = compile_deck(text, name="t").circuit
        assert isinstance(circuit.element("xa.x9.r1"), Resistor)


class TestTopSelection:
    def test_single_subckt_is_auto_top(self):
        text = ".subckt cell a\nr1 a vb 1k\nr2 vb 0 1k\n.ends\n"
        compiled = compile_deck(text, name="t")
        assert compiled.top == "cell"
        # Ports and internals stay unprefixed: directly bindable.
        assert set(compiled.circuit.nodes()) == {"a", "vb"}

    def test_explicit_top_wins(self):
        text = (".subckt a p\nr1 p 0 1k\n.ends\n"
                ".subckt b q\nc1 q 0 1p\n.ends\n")
        compiled = compile_deck(text, name="t", top="b")
        assert compiled.top == "b"
        assert compiled.circuit.nodes() == ["q"]

    def test_ambiguous_tops_rejected(self):
        text = (".subckt a p\nr1 p 0 1k\n.ends\n"
                ".subckt b q\nc1 q 0 1p\n.ends\n")
        with pytest.raises(IngestError, match="pick one with top="):
            compile_deck(text, name="t")

    def test_unknown_top_lists_candidates(self):
        with pytest.raises(IngestError, match="defined: \\['half'\\]"):
            compile_deck(HIER, name="t", top="nope")

    def test_empty_deck_rejected(self):
        with pytest.raises(IngestError, match="no device cards"):
            compile_deck("* only a comment\n", name="t")


class TestMosPrimitives:
    def test_x_card_with_mos_model_is_a_device(self):
        text = "xm1 d g 0 0 nmos_rvt w=1u l=100n\nvd d 0 dc 1\nvg g 0 dc 1\n"
        circuit = compile_deck(text, name="t").circuit
        el = circuit.element("xm1")
        assert isinstance(el, Mosfet)
        assert el.w == pytest.approx(1e-6)

    def test_nf_multiplies_m(self):
        text = "xm1 d g 0 0 nmos_rvt w=1u l=100n m=2 nf=3\nvd d 0 dc 1\n"
        circuit = compile_deck(text, name="t").circuit
        assert circuit.element("xm1").m == 6

    def test_unknown_subckt_names_candidates(self):
        with pytest.raises(IngestError, match="unknown subcircuit 'ghost'"):
            compile_deck("x1 a b ghost\n", name="t")


class TestHierarchyErrors:
    def test_port_count_mismatch(self):
        text = ".subckt half a b\nr1 a b 1k\n.ends\nx1 n1 half\n"
        with pytest.raises(IngestError, match="t:4") as exc:
            compile_deck(text, name="t")
        assert "1 nodes" in str(exc.value) and "2 ports" in str(exc.value)

    def test_recursion_detected(self):
        text = ".subckt loop a\nx1 a loop\n.ends\nx0 n1 loop\n"
        with pytest.raises(IngestError, match="recursive"):
            compile_deck(text, name="t")

    def test_errors_are_one_line(self):
        with pytest.raises(IngestError) as exc:
            compile_deck("x1 a b ghost\n", name="t")
        assert "\n" not in str(exc.value)


class TestExemplars:
    @pytest.mark.parametrize("deck", EXEMPLARS)
    def test_compiles_and_is_stable(self, deck):
        text = (DECK_DIR / deck).read_text()
        compiled = compile_deck(text, name=deck)
        assert len(compiled.circuit.nodes()) >= 3
        assert compiled.circuit.nodes() == sorted(compiled.circuit.nodes())
        assert canonicalize_deck(text, name=deck) == \
            canonicalize_deck(text, name=deck)

    def test_ota_exposes_bias_net(self):
        text = (DECK_DIR / "ota_5t.sp").read_text()
        nodes = compile_deck(text, name="ota").circuit.nodes()
        # The single-subckt top keeps internals unprefixed, so the
        # undriven bias gate is directly bindable.
        assert "vb1" in nodes and "vout" in nodes
