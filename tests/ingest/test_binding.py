"""Port bindings: validation, canonical form, and circuit wiring."""

import json
import pathlib

import pytest

from repro.ingest import (
    apply_binding,
    canonical_binding,
    compile_deck,
    parse_binding,
    IngestError,
)

DECK_DIR = pathlib.Path(__file__).parent / "decks"


def ota():
    return compile_deck((DECK_DIR / "ota_5t.sp").read_text(),
                        name="ota").circuit


def ota_binding():
    return (DECK_DIR / "ota_5t.binding.json").read_text()


class TestParseBinding:
    @pytest.mark.parametrize("bad,match", [
        ('{"ports": []}', "'ports' must be an object"),
        ('{"wires": {}}', "unknown key"),
        ('{"ports": {"vdd": 1.2}}', "must map to an object"),
        ('{"ports": {"vdd": {"volts": 1}}}', "unknown key"),
        ('{"ports": {"vdd": {"dc": true}}}', "must be a number"),
        ('{"outputs": "vout"}', "array of node names"),
        ('{"outputs": ["a", "b", "c"]}', "one .single-ended. or two"),
        ('{"supply": "vdd"}', "not in 'ports'"),
        ('{"loads": {"vout": "1p"}}', "must be a number"),
        ('not json', "not valid JSON"),
    ])
    def test_rejects_with_one_line(self, bad, match):
        with pytest.raises(IngestError, match=match) as exc:
            parse_binding(bad)
        assert "\n" not in str(exc.value)

    def test_accepts_object_or_text(self):
        obj = {"ports": {"vdd": {"dc": 1.2}}, "outputs": ["o"]}
        assert parse_binding(json.dumps(obj)) == parse_binding(obj)


class TestCanonicalBinding:
    def test_key_order_is_normalised(self):
        a = canonical_binding('{"outputs": ["o"], "ports": {"p": {"dc": 1}}}')
        b = canonical_binding('{"ports": {"p": {"dc": 1}}, "outputs": ["o"]}')
        assert a == b
        assert "\n" not in a and " " not in a


class TestApplyBinding:
    def test_wires_the_ota(self):
        circuit = ota()
        bound = apply_binding(circuit, ota_binding())
        assert bound.out_p == "vout"
        assert bound.supply_source == "bind.vdd"
        assert bound.input_sources == ("bind.vin+",)
        # Every port got a grounding source; the load cap is in place.
        for name in ("bind.vdd", "bind.vss", "bind.vin+", "bind.vin-",
                     "bind.vb1", "bind.load.vout"):
            circuit.element(name)

    def test_supply_axis_overrides_dc(self):
        circuit = ota()
        apply_binding(circuit, ota_binding(), supply=3.0)
        assert circuit.element("bind.vdd").dc == 3.0

    def test_supply_value_needs_supply_port(self):
        with pytest.raises(IngestError, match="names no 'supply' port"):
            apply_binding(ota(), '{"ports": {"vdd": {"dc": 1}}, '
                                 '"outputs": ["vout"]}', supply=3.0)

    def test_unknown_port_is_an_error(self):
        with pytest.raises(IngestError, match="bound port 'nope'"):
            apply_binding(ota(), '{"ports": {"nope": {"dc": 1}}, '
                                 '"outputs": ["vout"]}')

    def test_output_required(self):
        with pytest.raises(IngestError, match="at least one output"):
            apply_binding(ota(), '{"ports": {"vdd": {"dc": 1}}}')

    def test_differential_outputs(self):
        text = (DECK_DIR / "clocked_comparator.sp").read_text()
        circuit = compile_deck(text, name="cmp").circuit
        binding = (DECK_DIR / "clocked_comparator.binding.json").read_text()
        bound = apply_binding(circuit, binding)
        assert (bound.out_p, bound.out_n) == ("outp", "outn")
