"""Lexer / number / expression / parse-stage contracts.

Every failure mode must surface as a one-line :class:`IngestError`
carrying the deck name and the 1-based source line of the offending
card — that is the whole diagnostic the CLI and the serve layer print.
"""

import pytest

from repro.ingest import IngestError, parse_deck
from repro.ingest.expressions import eval_expr, eval_value
from repro.ingest.lexer import lex, logical_lines, tokenize
from repro.ingest.numbers import parse_number


class TestNumbers:
    @pytest.mark.parametrize("token,value", [
        ("1k", 1e3), ("2.5meg", 2.5e6), ("10u", 1e-5), ("1.2p", 1.2e-12),
        ("100f", 1e-13), ("3n", 3e-9), ("0.5m", 0.5e-3), ("1g", 1e9),
        ("2t", 2e12), ("1mil", 25.4e-6), ("1e-3", 1e-3), ("-4.7k", -4.7e3),
        (".5u", 0.5e-6), ("1.5e3k", 1.5e6),
    ])
    def test_engineering_suffixes(self, token, value):
        assert parse_number(token) == pytest.approx(value, rel=1e-12)

    def test_trailing_unit_letters_ignored(self):
        # Classic SPICE: anything after the scale letter is a unit tag.
        assert parse_number("5v") == 5.0
        assert parse_number("1kohm") == 1e3
        assert parse_number("10uf") == pytest.approx(1e-5, rel=1e-12)

    def test_meg_not_milli(self):
        assert parse_number("1meg") == 1e6
        assert parse_number("1m") == 1e-3

    def test_non_numbers(self):
        assert parse_number("vdd") is None
        assert parse_number("") is None
        assert parse_number("1..2") is None


class TestLexer:
    def test_continuation_joins_cards(self):
        lines = logical_lines("m1 d g\n+ s b nmod\n+ w=1u\n", "t")
        assert len(lines) == 1
        assert lines[0][0] == 1          # first physical line number
        assert "w=1u" in lines[0][1]

    def test_continuation_without_card_fails(self):
        with pytest.raises(IngestError, match=r"t:1"):
            logical_lines("+ w=1u\n", "t")

    def test_comments_stripped(self):
        cards = lex("* a title-ish comment\nr1 a b 1k ; trailing\n"
                    "c1 a 0 1p $ also trailing\n", "t")
        assert [c.tokens[0] for c in cards] == ["r1", "c1"]
        assert cards[0].tokens[-1] == "1k"

    def test_paren_groups_single_token(self):
        toks = tokenize("v1 in 0 sin(0 1 1k)", "t", 1)
        assert toks == ["v1", "in", "0", "sin(0 1 1k)"]

    def test_equals_split(self):
        toks = tokenize("m1 d g s b mod w=10u l = 2u", "t", 1)
        assert toks[:6] == ["m1", "d", "g", "s", "b", "mod"]
        assert toks[6:] == ["w", "=", "10u", "l", "=", "2u"]

    def test_unterminated_group(self):
        with pytest.raises(IngestError, match=r"t:3"):
            lex("r1 a b 1k\nr2 b c 2k\nv1 in 0 sin(0 1\n", "t")

    def test_case_folding(self):
        cards = lex("R1 NodeA NODEB 1K\n", "t")
        assert cards[0].tokens == ["r1", "nodea", "nodeb", "1k"]


class TestExpressions:
    def test_arithmetic_and_suffixes(self):
        assert eval_expr("2*3 + 1k", {}, deck="t", line=1) == 1006.0

    def test_param_references(self):
        env = {"w0": 2e-6}
        assert eval_value("{w0*2}", env, deck="t", line=1) == 4e-6
        assert eval_value("'w0/2'", env, deck="t", line=1) == 1e-6

    def test_functions(self):
        assert eval_expr("sqrt(16)", {}, deck="t", line=1) == 4.0
        assert eval_expr("max(1, 2, 3)", {}, deck="t", line=1) == 3.0

    def test_unknown_name_is_one_line_error(self):
        with pytest.raises(IngestError, match=r"t:7") as exc:
            eval_expr("undefined_param*2", {}, deck="t", line=7)
        assert "\n" not in str(exc.value)

    def test_no_arbitrary_code(self):
        for evil in ("__import__('os')", "(1).__class__", "[1 for _ in [1]]"):
            with pytest.raises(IngestError):
                eval_expr(evil, {}, deck="t", line=1)


class TestParseDeck:
    def test_subckt_collected(self):
        deck = parse_deck(".subckt amp in out vdd\nr1 in out 1k\n.ends\n"
                          "x1 a b vdd amp\n", name="t")
        assert "amp" in deck.subckts
        assert list(deck.subckts["amp"].ports) == ["in", "out", "vdd"]
        assert len(deck.cards) == 1          # the X card

    def test_params_evaluate_in_order(self):
        deck = parse_deck(".param a=2\n.param b='a*3'\n", name="t")
        assert deck.params["b"] == 6.0

    def test_model_card(self):
        deck = parse_deck(".model nch nmos (vto=0.7 kp=100u level=1)\n",
                          name="t")
        model = deck.models["nch"]
        assert model.polarity == "nmos"
        assert model.vth0 == 0.7            # LEVEL= popped, not a knob

    @pytest.mark.parametrize("text,line", [
        (".ends\n", 1),                      # .ends without .subckt
        (".subckt a p\nr1 p 0 1k\n", 1),     # unclosed, blamed on opener
        ("r1 a b 1k\nw1 a b\n", 2),          # unknown device letter
        (".model a d ()\n.model a d ()\n", 2),  # duplicate .model name
        (".subckt a p\n.subckt b q\n.ends\n.ends\n", 2),  # no nesting
        (".model m1 nmos (vto=0.7\n", 1),    # unterminated model group
    ])
    def test_diagnostics_carry_line_numbers(self, text, line):
        with pytest.raises(IngestError, match=rf"t:{line}") as exc:
            parse_deck(text, name="t")
        assert "\n" not in str(exc.value)

    def test_dot_end_stops_parsing(self):
        deck = parse_deck("r1 a b 1k\n.end\nthis is not spice\n", name="t")
        assert len(deck.cards) == 1
