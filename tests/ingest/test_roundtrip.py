"""Export -> re-ingest round trip: identical MNA stamps.

``repro.spice.export`` writes a deck; ``repro.ingest`` reads it back.
The two are a matched pair: every element flavour the engine stamps
must survive the cycle with *bit-identical* static matrices and
assembled Jacobians.  This is the regression net for the exporter's
historical card-formatting gaps — F/H control references hardcoded a
``V`` prefix (dangling for E/H/L controls) and switches were exported
with an illegal mid-card ``*`` comment.
"""

import numpy as np
import pytest

from repro.ingest import compile_deck
from repro.spice.devices.bjt import BjtModel
from repro.spice.devices.diode import DiodeModel
from repro.spice.devices.mosfet import MosModel
from repro.spice.export import export_netlist
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit


def mos_model(polarity="nmos"):
    # clm chosen so the exporter's LAMBDA = clm / 5e-6 fold is exact.
    return MosModel(name=f"rt_{polarity}", polarity=polarity, kp=90e-6,
                    clm=0.05e-6)


def linear_menagerie() -> Circuit:
    """Every linear element flavour, including the formerly-broken ones:
    a CCCS controlled by an E source, a CCVS controlled by an inductor,
    and a switch in each state."""
    c = Circuit(name="menagerie")
    c.vsource("vin", "a", "gnd", dc=1.0, ac=1.0)
    c.resistor("r1", "a", "b", 1.234e3, tc1=1e-3, tc2=1e-6)
    c.capacitor("c1", "b", "gnd", 2.49993e-14)
    c.inductor("l1", "b", "d", 1e-3)
    c.vcvs("ea", "d", "gnd", "a", "b", 2.5)
    c.vccs("gm", "d", "gnd", "a", "gnd", 1e-4)
    c.cccs("fb", "e", "gnd", control="ea", gain=0.5)     # E-controlled
    c.ccvs("hb", "e", "f", control="l1", transresistance=50.0)  # L-controlled
    c.cccs("fc", "f", "gnd", control="vin", gain=2.0)    # V-controlled
    c.switch("sw_on", "f", "gnd", closed=True, ron=123.0)
    c.switch("sw_off", "e", "gnd", closed=False)
    c.resistor("rload", "e", "gnd", 1e4)
    return c


def device_menagerie() -> Circuit:
    c = Circuit(name="devices")
    c.vsource("vdd", "vdd", "gnd", dc=2.5)
    c.vsource("vg", "g", "gnd", dc=1.2)
    c.mosfet("m1", "d", "g", "gnd", "gnd", model=mos_model(), w=10e-6,
             l=1e-6, m=2)
    c.mosfet("m2", "d", "g", "vdd", "vdd", model=mos_model("pmos"),
             w=20e-6, l=1e-6)
    c.resistor("rd", "vdd", "d", 10e3)
    c.bjt("q1", "d", "g", "gnd",
          model=BjtModel(name="rt_npn", polarity="npn"), area=2.0)
    c.diode("d1", "d", "gnd",
            model=DiodeModel(name="rt_d"), area=1.5)
    return c


def reingest(circuit: Circuit) -> Circuit:
    return compile_deck(export_netlist(circuit), name=circuit.name).circuit


def assert_same_stamps(a: Circuit, b: Circuit) -> None:
    sys_a, sys_b = MnaSystem(a), MnaSystem(b)
    assert sys_a.size == sys_b.size
    np.testing.assert_array_equal(sys_a.g_static, sys_b.g_static)
    np.testing.assert_array_equal(sys_a.c_static, sys_b.c_static)
    np.testing.assert_array_equal(sys_a.rhs_dc(), sys_b.rhs_dc())
    np.testing.assert_array_equal(sys_a.rhs_ac(), sys_b.rhs_ac())
    # Nonlinear stamps at a deterministic non-trivial point.
    x = np.linspace(0.1, 0.9, sys_a.size + 1)
    jac_a, resid_a, _ = sys_a.assemble(x, sys_a.rhs_dc())
    jac_b, resid_b, _ = sys_b.assemble(x, sys_b.rhs_dc())
    np.testing.assert_array_equal(jac_a, jac_b)
    np.testing.assert_array_equal(resid_a, resid_b)


class TestRoundTrip:
    def test_linear_menagerie_bit_identical(self):
        circuit = linear_menagerie()
        assert_same_stamps(circuit, reingest(circuit))

    def test_device_menagerie_bit_identical(self):
        circuit = device_menagerie()
        assert_same_stamps(circuit, reingest(circuit))

    def test_node_names_survive(self):
        circuit = linear_menagerie()
        assert reingest(circuit).nodes() == circuit.nodes()

    def test_switch_state_survives(self):
        # The on-switch re-ingests as its ron, the off-switch as roff:
        # same conductance stamp either way.
        circuit = Circuit(name="sw")
        circuit.vsource("v1", "a", "gnd", dc=1.0)
        circuit.switch("s1", "a", "gnd", closed=True, ron=123.0)
        back = reingest(circuit)
        el = back.element("rs1")
        assert el.value == 123.0

    def test_control_prefix_matches_card(self):
        """F/H control references must use the control element's own
        card letter, not a hardcoded V."""
        deck = export_netlist(linear_menagerie())
        cards = {line.split()[0]: line for line in deck.splitlines()
                 if line and not line.startswith((".", "*"))}
        assert cards["Ffb"].split()[3] == "Eea"
        assert cards["Hhb"].split()[3] == "Ll1"
        assert cards["Ffc"].split()[3] == "Vvin"

    def test_second_cycle_is_stable(self):
        """Canonicalisation is not name-idempotent (card letters accrete)
        but the stamps must stay fixed from the first cycle on."""
        circuit = linear_menagerie()
        once = reingest(circuit)
        twice = reingest(once)
        assert_same_stamps(once, twice)
