"""``repro ingest`` front door: success paths, diagnostics, exit codes."""

import pathlib

import pytest

from repro.cli import main

DECK_DIR = pathlib.Path(__file__).parent / "decks"


def ota_args(*extra):
    return ["ingest", str(DECK_DIR / "ota_5t.sp"),
            "--binding", str(DECK_DIR / "ota_5t.binding.json"), *extra]


class TestIngestCli:
    @pytest.mark.parametrize("deck", ["ota_5t", "diff_amp",
                                      "clocked_comparator"])
    def test_validate_all_exemplars(self, deck, capsys):
        assert main(["ingest", str(DECK_DIR / f"{deck}.sp"),
                     "--validate"]) == 0
        assert capsys.readouterr().out == ""

    def test_inventory_line(self, capsys):
        assert main(["ingest", str(DECK_DIR / "ota_5t.sp")]) == 0
        out = capsys.readouterr().out
        assert "top 'ota_5t'" in out and "nodes" in out and "elements" in out

    def test_canonical_prints_deck(self, capsys):
        assert main(["ingest", str(DECK_DIR / "ota_5t.sp"),
                     "--canonical"]) == 0
        out = capsys.readouterr().out
        assert out.endswith(".end\n")
        assert "Mxm1" in out

    def test_op_prints_operating_point(self, capsys):
        assert main(ota_args("--op")) == 0
        out = capsys.readouterr().out
        assert "v(vout)" in out and "i(bind.vdd)" in out

    def test_ac_prints_gain(self, capsys):
        assert main(ota_args("--ac")) == 0
        out = capsys.readouterr().out
        assert "gain(vout) at 1 kHz" in out

    def test_missing_file_is_exit_2(self, capsys):
        assert main(["ingest", "no_such_deck.sp"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_malformed_deck_is_one_line_with_lineno(self, tmp_path, capsys):
        bad = tmp_path / "bad.sp"
        bad.write_text("m1 d\n")
        assert main(["ingest", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: bad.sp:1:")
        assert err.count("\n") == 1

    def test_op_requires_binding(self, tmp_path, capsys):
        assert main(["ingest", str(DECK_DIR / "ota_5t.sp"), "--op"]) == 2
        assert "binding" in capsys.readouterr().err

    def test_bad_binding_is_exit_2(self, tmp_path, capsys):
        binding = tmp_path / "b.json"
        binding.write_text('{"ports": {"ghost": {"dc": 1}}, '
                           '"outputs": ["vout"]}')
        assert main(["ingest", str(DECK_DIR / "ota_5t.sp"),
                     "--binding", str(binding), "--op"]) == 2
        err = capsys.readouterr().err
        assert "ghost" in err and err.count("\n") == 1
