"""Sparse solve path: CSC assembly + SuperLU vs the dense reference.

The sparse path is auto-selected above ``MnaSystem.sparse_threshold``
nodes and guarded by the scaled-residual acceptance check; below the
threshold nothing changes (the dense path stays byte-identical, which
the executor-equivalence matrix already pins).  Here the threshold is
forced down so a modest ladder exercises the sparse code, and the
answers are compared against dense on the same circuit.
"""

import numpy as np
import pytest

from repro.ingest import compile_deck
from repro.spice.dc import dc_operating_point
from repro.spice.mna import MnaSystem

N_NODES = 120


def ladder_text(n=N_NODES):
    lines = [".model dcore d (is=1e-14 n=1.5)",
             "vin n0 0 dc 1.0 ac 1.0"]
    for i in range(n):
        lines.append(f"r{i} n{i} n{i + 1} 1k")
        lines.append(f"c{i} n{i + 1} 0 1p")
        if i % 25 == 0:
            lines.append(f"d{i} n{i + 1} 0 dcore")
    return "\n".join(lines) + "\n.end\n"


@pytest.fixture()
def ladder():
    return compile_deck(ladder_text(), name="ladder").circuit


def solve(circuit, freqs):
    op = dc_operating_point(circuit)
    tf = op.small_signal().transfer(freqs, f"n{N_NODES}")
    x = np.array([op.v(f"n{k}") for k in range(N_NODES + 1)])
    return x, tf


class TestSelection:
    def test_threshold_gates_preference(self, ladder, monkeypatch):
        system = MnaSystem(ladder)
        assert not system.prefer_sparse      # 121 nodes < default 500
        monkeypatch.setattr(MnaSystem, "sparse_threshold", 10)
        assert MnaSystem(ladder).prefer_sparse

    def test_assemble_csc_matches_dense(self, ladder):
        system = MnaSystem(ladder)
        n = system.size
        x = np.linspace(0.0, 1.0, n + 1)
        rhs = system.rhs_dc()
        jac, resid_d, _ = system.assemble(x, rhs, gmin=1e-9)
        a, resid_s, _ = system.assemble_csc(x, rhs, gmin=1e-9)
        # COO duplicate summation may reorder float adds vs the dense
        # np.add.at path, so the comparison is allclose at ~1 ulp scale.
        np.testing.assert_allclose(a.toarray(), jac[:n, :n],
                                   rtol=1e-13, atol=1e-30)
        np.testing.assert_allclose(resid_s, resid_d, rtol=1e-13, atol=1e-30)


class TestEquivalence:
    def test_sparse_matches_dense_dc_and_ac(self, ladder, monkeypatch):
        freqs = np.logspace(1, 7, 20)
        monkeypatch.setattr(MnaSystem, "sparse_threshold", 10 ** 9)
        x_dense, tf_dense = solve(ladder, freqs)
        ladder_s = compile_deck(ladder_text(), name="ladder").circuit
        monkeypatch.setattr(MnaSystem, "sparse_threshold", 10)
        x_sparse, tf_sparse = solve(ladder_s, freqs)

        assert float(np.max(np.abs(x_dense - x_sparse))) < 1e-9
        # Stimulus-referred: past the ladder's deep attenuation the dense
        # answer is its own roundoff noise, so pointwise relative error
        # is meaningless there.
        scale = float(np.max(np.abs(tf_dense)))
        assert float(np.max(np.abs(tf_dense - tf_sparse))) / scale < 1e-9

    def test_sparse_newton_converges_like_dense(self, ladder, monkeypatch):
        monkeypatch.setattr(MnaSystem, "sparse_threshold", 10)
        op = dc_operating_point(ladder)
        assert op.strategy == "newton"
        assert np.isfinite(op.v(f"n{N_NODES}"))
