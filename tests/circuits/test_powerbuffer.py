"""Fig. 8/9 class-AB driver: quiescent control, swing, gain, CM loop."""

import numpy as np
import pytest

from repro.circuits.powerbuffer import PowerBufferSizes, build_power_buffer
from repro.spice import ac_analysis, dc_operating_point
from repro.spice.sweeps import source_value_sweep


class TestOperatingPoint:
    def test_converges_directly(self, buffer_op):
        assert buffer_op.strategy == "newton"

    def test_iq_within_table2(self, buffer_op):
        iq_ma = abs(buffer_op.i("vdd_src")) * 1e3
        assert iq_ma == pytest.approx(3.25, abs=1.0)

    def test_output_quiescent_set_by_translinear_ratio(self, buffer_inverting,
                                                       buffer_op):
        sz = buffer_inverting.sizes
        target = sz.quiescent_ratio * sz.i_ab_bias
        for side in ("a", "b"):
            ip = abs(buffer_op.mos_op(f"mpo_{side}").ids)
            i_n = abs(buffer_op.mos_op(f"mno_{side}").ids)
            assert ip == pytest.approx(target, rel=0.25)
            assert i_n == pytest.approx(target, rel=0.25)

    def test_outputs_balanced_at_vbal(self, buffer_op):
        assert abs(buffer_op.v("outp")) < 0.02
        assert abs(buffer_op.v("outn")) < 0.02

    def test_ab_head_devices_conduct(self, buffer_op):
        assert abs(buffer_op.mos_op("mnab_a").ids) > 10e-6
        assert abs(buffer_op.mos_op("mpab_a").ids) > 10e-6


class TestClosedLoopGain:
    def test_inverting_unity(self, buffer_op):
        ac = ac_analysis(buffer_op, np.array([1e3]))
        assert abs(ac.vdiff("outp", "outn")[0]) == pytest.approx(1.0, abs=0.05)

    def test_gain_follows_resistor_ratio(self, tech):
        design = build_power_buffer(tech, feedback="inverting",
                                    load="resistive", r_in=10e3, r_fb=20e3)
        op = dc_operating_point(design.circuit)
        ac = ac_analysis(op, np.array([1e3]))
        assert abs(ac.vdiff("outp", "outn")[0]) == pytest.approx(2.0, rel=0.05)

    def test_signal_dependent_gain_of_paper(self, tech):
        """Sec. 4: 'signal dependent gain (5 % over the full range)'.
        The incremental gain droops toward the swing extremes but stays
        within ~5 %."""
        design = build_power_buffer(tech, feedback="inverting", load="resistive")
        from repro.analysis.distortion import measure_static_transfer

        transfer = measure_static_transfer(
            design.circuit, "vsrc_p", "vsrc_n", "outp", "outn",
            amplitude=1.6, points=33,
        )
        g0 = transfer.gain_at(0.0)
        g_edge = transfer.gain_at(0.7)
        droop = abs(g_edge - g0) / g0
        assert droop < 0.08

    def test_feedback_modes_validated(self, tech):
        with pytest.raises(ValueError, match="feedback"):
            build_power_buffer(tech, feedback="bootstrap")
        with pytest.raises(ValueError, match="load"):
            build_power_buffer(tech, load="speaker")


class TestOutputSwing:
    def test_eq8_output_reaches_near_rails(self, tech):
        """Eq. 8: the common-source output runs to within sqrt(I/beta)
        of each rail."""
        design = build_power_buffer(tech, feedback="inverting", load="resistive")
        levels = np.linspace(-2.0, 2.0, 17)
        ops = source_value_sweep(design.circuit, "vsrc_p", levels, anchor=0.0)
        # drive only one source: differential input = level, gain -1
        outs = np.array([op.v("outp") - op.v("outn") for op in ops])
        assert outs.max() > 1.8   # each side within ~0.35 V of its rail
        assert outs.min() < -1.8

    def test_hd_ordering_of_table2(self, tech):
        """V_omax(0.3 % HD) < V_omax(0.6 % HD): distortion grows with
        swing, so the tighter HD spec gives less swing."""
        from repro.analysis.distortion import amplitude_at_thd, measure_static_transfer

        design = build_power_buffer(tech, feedback="inverting", load="resistive")
        tr = measure_static_transfer(design.circuit, "vsrc_p", "vsrc_n",
                                     "outp", "outn", amplitude=3.2, points=41)
        a06 = amplitude_at_thd(tr, 0.006, 0.3, 3.0)
        a03 = amplitude_at_thd(tr, 0.003, 0.3, 3.0)
        assert a03 <= a06


class TestCommonMode:
    def test_output_cm_tracks_vbal(self, tech):
        """'the common mode output voltage is very close to the input
        balance voltage connected to the gate of transistor T4'."""
        for vbal in (-0.2, 0.0, 0.2):
            design = build_power_buffer(tech, feedback="inverting",
                                        load="resistive", vbal=vbal)
            op = dc_operating_point(design.circuit)
            vcm = 0.5 * (op.v("outp") + op.v("outn"))
            assert vcm == pytest.approx(vbal, abs=0.05)

    def test_even_harmonics_cancelled(self, tech):
        """FD symmetry: HD2 vanishes nominally (the Fig. 11 spectrum)."""
        from repro.analysis.distortion import measure_static_transfer

        design = build_power_buffer(tech, feedback="inverting", load="resistive",
                                    vdd=1.5, vss=-1.5)
        tr = measure_static_transfer(design.circuit, "vsrc_p", "vsrc_n",
                                     "outp", "outn", amplitude=2.2, points=41)
        # distortion of +A and -A inputs must mirror: odd symmetry
        out_pos = np.interp(+1.5, tr.vin, tr.vout)
        out_neg = np.interp(-1.5, tr.vin, tr.vout)
        assert out_pos == pytest.approx(-out_neg, rel=1e-3)


class TestSupplyAndSizes:
    def test_runs_from_2_6_to_5_v(self, tech):
        for vsup in (2.6, 5.0):
            design = build_power_buffer(tech, feedback="inverting",
                                        load="resistive",
                                        vdd=vsup / 2, vss=-vsup / 2)
            op = dc_operating_point(design.circuit)
            assert abs(op.v("outp")) < 0.05

    def test_iq_stays_controlled_over_supply(self, tech):
        """The translinear loop holds IQ roughly constant 2.8..5 V (the
        paper claims 15 %)."""
        iqs = []
        for vsup in (2.8, 4.0, 5.0):
            design = build_power_buffer(tech, feedback="inverting",
                                        load="resistive",
                                        vdd=vsup / 2, vss=-vsup / 2)
            op = dc_operating_point(design.circuit)
            iqs.append(abs(op.i("vdd_src")))
        spread = (max(iqs) - min(iqs)) / np.mean(iqs)
        assert spread < 0.35

    def test_custom_sizes(self, tech):
        sz = PowerBufferSizes(quiescent_ratio=10)
        design = build_power_buffer(tech, sizes=sz, feedback="inverting",
                                    load="resistive")
        op = dc_operating_point(design.circuit)
        assert abs(op.mos_op("mpo_a").ids) == pytest.approx(
            10 * sz.i_ab_bias, rel=0.3
        )
