"""Fig. 3 fully differential bandgap: value, symmetry, tempco, noise."""

import numpy as np
import pytest

from repro.circuits.bandgap import build_bandgap, ctat_slope, find_r2_trim
from repro.spice import dc_operating_point, noise_analysis
from repro.spice.analysis import log_freqs
from repro.spice.sweeps import temperature_sweep

#: Trim found once for the module (the Fig. 3 bench re-derives it).
TRIM = 1.2


@pytest.fixture(scope="module")
def bandgap(tech):
    return build_bandgap(tech, r2_trim=TRIM)


@pytest.fixture(scope="module")
def bandgap_op(bandgap):
    return dc_operating_point(bandgap.circuit)


class TestOperatingPoint:
    def test_converges_directly(self, bandgap_op):
        assert bandgap_op.strategy == "newton"

    def test_reference_values(self, bandgap, bandgap_op):
        vrefp = bandgap_op.v(bandgap.vrefp)
        vrefn = bandgap_op.v(bandgap.vrefn)
        assert vrefp == pytest.approx(0.6, abs=0.06)
        assert vrefn == pytest.approx(-0.6, abs=0.06)

    def test_symmetry_about_ground(self, bandgap, bandgap_op):
        """'symmetrical reference voltage of +/-0.6 V around ground'."""
        vrefp = bandgap_op.v(bandgap.vrefp)
        vrefn = bandgap_op.v(bandgap.vrefn)
        assert vrefp + vrefn == pytest.approx(0.0, abs=0.02)

    def test_total_is_a_bandgap_voltage(self, bandgap, bandgap_op):
        diff = bandgap_op.v(bandgap.vrefp) - bandgap_op.v(bandgap.vrefn)
        assert 1.1 < diff < 1.3


class TestTemperature:
    def test_tempco_below_40ppm(self, bandgap):
        """The paper's headline: < +/-40 ppm/degC over the range."""
        temps = np.linspace(-20, 85, 15)
        ops = temperature_sweep(bandgap.circuit, temps)
        vref = np.array([op.v(bandgap.vrefp) - op.v(bandgap.vrefn) for op in ops])
        box_tc = (vref.max() - vref.min()) / vref.mean() / (temps[-1] - temps[0]) * 1e6
        assert box_tc < 40.0

    def test_curvature_is_concave(self, bandgap):
        """First-order cancellation leaves the classic parabola."""
        temps = np.array([-20.0, 30.0, 85.0])
        ops = temperature_sweep(bandgap.circuit, temps)
        vref = np.array([op.v(bandgap.vrefp) - op.v(bandgap.vrefn) for op in ops])
        assert vref[1] > min(vref[0], vref[2]) - 1e-4

    def test_ctat_slope_negative(self, tech):
        assert -2.5e-3 < ctat_slope(tech, 20e-6) < -1.2e-3

    def test_trim_finder_converges(self, tech):
        trim = find_r2_trim(tech, iterations=3)
        assert 1.0 < trim < 1.5


class TestSupply:
    def test_operates_down_to_2_6v(self, tech):
        design = build_bandgap(tech, r2_trim=TRIM, supply=2.6)
        op = dc_operating_point(design.circuit)
        diff = op.v(design.vrefp) - op.v(design.vrefn)
        assert diff == pytest.approx(1.2, abs=0.1)

    def test_line_regulation(self, tech):
        """Line sensitivity stays bounded.  The no-cascode VGS-matched
        loops see their branch VDS change with supply, which costs a few
        %/V — the real price of the paper's 'cascoding is not possible'
        constraint (the front-end runs these from a fixed 2.6 V rail)."""
        refs = []
        for supply in (2.6, 3.0):
            design = build_bandgap(tech, r2_trim=TRIM, supply=supply)
            op = dc_operating_point(design.circuit)
            refs.append(op.v(design.vrefp) - op.v(design.vrefn))
        assert abs(refs[1] - refs[0]) / refs[0] / 0.4 < 0.08


class TestNoise:
    def test_voice_band_noise_below_200nv(self, bandgap, bandgap_op):
        """Fig. 3 spec: 'average RMS noise voltage is smaller than
        200 nV/sqrt(Hz) in the voice band'."""
        # Give the reference an AC "input" for referral: the supply.
        bandgap.circuit.element("vdd_src").ac = 1.0
        try:
            freqs = log_freqs(100.0, 10e3, 10)
            nr = noise_analysis(bandgap_op, freqs, bandgap.vrefp, bandgap.vrefn)
            band_avg_nv = nr.average_input_density  # not used; output is the metric
            psd = nr.output_psd
            avg_nv = np.sqrt(np.trapezoid(psd, freqs) / (freqs[-1] - freqs[0])) * 1e9
            assert avg_nv < 200.0
            _ = band_avg_nv
        finally:
            bandgap.circuit.element("vdd_src").ac = 0.0


class TestDesignValues:
    def test_resistor_ratio_matches_zero_tc_condition(self, bandgap, tech):
        from repro.constants import thermal_voltage

        k_over_q_lnn = thermal_voltage(25.0) / 298.15 * np.log(bandgap.area_ratio)
        expected_r2 = abs(ctat_slope(tech, bandgap.i_ptat)) * bandgap.r1 / k_over_q_lnn
        assert bandgap.r2 == pytest.approx(expected_r2 * TRIM, rel=1e-6)

    def test_output_resistor_sets_level(self, bandgap):
        assert bandgap.r_out * (bandgap.i_ptat + 0.72 / bandgap.r2) == pytest.approx(
            0.6, rel=0.05
        )
