"""Fig. 2 bias generator: current value, tempco, Eq. 1 minimum supply."""

import numpy as np
import pytest

from repro.circuits.bias import build_bias_circuit, eq1_min_supply
from repro.spice import dc_operating_point, dc_sweep
from repro.spice.sweeps import temperature_sweep


@pytest.fixture(scope="module")
def bias(tech):
    return build_bias_circuit(tech)


@pytest.fixture(scope="module")
def bias_op(bias):
    return dc_operating_point(bias.circuit)


class TestOperatingPoint:
    def test_converges_with_plain_newton(self, bias_op):
        assert bias_op.strategy == "newton"

    def test_current_near_target(self, bias, bias_op):
        i_out = bias_op.v("iout") / 10e3
        assert i_out == pytest.approx(bias.i_nominal, rel=0.1)

    def test_all_mirrors_saturated(self, bias_op):
        assert bias_op.saturation_report() == []

    def test_delta_vbe_across_resistor(self, bias, bias_op):
        """The PTAT mechanism: V(R1) = UT ln(N) within loop errors."""
        from repro.constants import thermal_voltage

        v_r1 = bias_op.v("rtop") - bias_op.v("e2")
        expected = thermal_voltage(25.0) * np.log(bias.area_ratio)
        assert v_r1 == pytest.approx(expected, rel=0.10)

    def test_mirror_currents_match(self, bias_op):
        i1 = bias_op.mos_op("mp1").ids
        i2 = bias_op.mos_op("mp2").ids
        assert i1 == pytest.approx(i2, rel=0.02)


class TestTemperature:
    def test_current_slightly_increases_with_temperature(self, bias):
        """Sec. 2.1: 'the bias current should be constant or slightly
        increasing with temperature'."""
        from repro.process import CONSUMER_TEMPS_C

        temps = np.array(CONSUMER_TEMPS_C)
        ops = temperature_sweep(bias.circuit, temps)
        currents = np.array([op.v("iout") / 10e3 for op in ops])
        assert currents[2] > currents[0]
        # "slightly": much flatter than pure PTAT (which would be +35 %)
        ptat_ratio = (85 + 273.15) / (-20 + 273.15)
        actual_ratio = currents[2] / currents[0]
        assert 1.0 < actual_ratio < ptat_ratio


class TestMinimumSupply:
    def test_operates_at_2_6_v(self, tech):
        design = build_bias_circuit(tech, supply=2.6)
        op = dc_operating_point(design.circuit)
        assert op.v("iout") / 10e3 > 0.9 * design.i_nominal

    def test_simulated_min_supply_above_eq1_bound(self, tech, bias):
        """Eq. 1 is a necessary condition (one branch's headroom); the
        full circuit needs a bit more (the second branch has an extra
        VGS) — the bench shows both."""
        volts = np.linspace(3.0, 1.4, 33)
        data = dc_sweep(bias.circuit, "vsup", volts, ["iout"])
        current = data["iout"] / 10e3
        ok = current >= 0.9 * current[0]
        v_min_sim = volts[np.where(~ok)[0][0] - 1]
        bound = eq1_min_supply(tech, bias.i_nominal,
                               bias.w_nmos / bias.l_nmos, 25.0)
        assert v_min_sim >= bound
        assert v_min_sim - bound < 0.8

    def test_eq1_worst_case_is_cold(self, tech):
        """'the lowest temperature required ... is also the most critical
        parameter': Eq. 1 grows as temperature falls."""
        cold = eq1_min_supply(tech, 20e-6, 50.0, -20.0)
        hot = eq1_min_supply(tech, 20e-6, 50.0, 85.0)
        assert cold > hot

    def test_eq1_grows_with_current(self, tech):
        low = eq1_min_supply(tech, 5e-6, 50.0, 25.0)
        high = eq1_min_supply(tech, 80e-6, 50.0, 25.0)
        assert high > low

    def test_eq1_shrinks_with_wide_devices(self, tech):
        """'the (W/L) ratio of the MOS transistors [must be] large'."""
        narrow = eq1_min_supply(tech, 20e-6, 10.0, 25.0)
        wide = eq1_min_supply(tech, 20e-6, 200.0, 25.0)
        assert wide < narrow


class TestMismatchSensitivity:
    def test_current_spread_over_monte_carlo(self, tech):
        from repro.process.mismatch import MismatchSampler

        currents = []
        for seed in range(6):
            sampler = MismatchSampler(tech, np.random.default_rng(seed))
            design = build_bias_circuit(tech, mismatch=sampler)
            op = dc_operating_point(design.circuit)
            currents.append(op.v("iout") / 10e3)
        spread = (max(currents) - min(currents)) / np.mean(currents)
        # "central bias generator does not need to be very accurate"
        assert spread < 0.3
