"""The modulator's opamp (Sec. 2.2): class A, ~150 uA, FD + resistive CMFB."""

import numpy as np
import pytest

from repro.circuits.opamp import (
    ModulatorOpampSizes,
    build_modulator_opamp,
    characterize_modulator_opamp,
)
from repro.spice import ac_analysis, dc_operating_point


@pytest.fixture(scope="module")
def figures(tech):
    return characterize_modulator_opamp(tech)


class TestOperatingPoint:
    def test_converges(self, tech):
        design = build_modulator_opamp(tech)
        op = dc_operating_point(design.circuit)
        assert op.strategy == "newton"
        assert op.saturation_report() == []

    def test_quiescent_current_near_150ua(self, figures):
        """Sec. 2.2: 'the quiescent supply current for the modulators
        opamp is about 150 uA'."""
        assert figures["iq_ua"] == pytest.approx(150.0, rel=0.25)

    def test_outputs_balanced(self, tech):
        design = build_modulator_opamp(tech)
        op = dc_operating_point(design.circuit)
        assert abs(op.v("outp")) < 0.03
        assert abs(op.v("outp") - op.v("outn")) < 1e-3


class TestSmallSignal:
    def test_dc_gain_high_enough_for_14_bits(self, figures):
        """Settling error ~1/A must stay below the 14-bit LSB weight at
        the integrator: A > ~80 dB."""
        assert figures["dc_gain_db"] > 80.0

    def test_gbw_in_mhz_range(self, figures):
        """The 1 MHz-ish sigma-delta clock needs a few MHz of GBW."""
        assert 3e6 < figures["gbw_hz"] < 50e6

    def test_phase_margin_stable(self, figures):
        assert figures["phase_margin_deg"] > 40.0

    def test_outputs_antiphase(self, tech):
        design = build_modulator_opamp(tech)
        op = dc_operating_point(design.circuit)
        ac = ac_analysis(op, np.array([1e3]))
        vp, vn = ac.v("outp")[0], ac.v("outn")[0]
        assert abs(vp + vn) < 0.05 * abs(vp - vn)


class TestStructure:
    def test_class_a_output(self, tech):
        """The output stage is class A: a single driver against a fixed
        current source per side (no AB head)."""
        design = build_modulator_opamp(tech)
        names = {el.name for el in design.circuit}
        assert "td_a" in names and "tp_a" in names
        assert not any(n.startswith("mnab") or n.startswith("mpab")
                       for n in names)

    def test_no_cascodes_anywhere(self, tech):
        """Sec. 2.2: every MOS conducts source-to-rail or to a tail/output
        node — no stacked same-flavour cascode pairs in a branch."""
        design = build_modulator_opamp(tech)
        op = dc_operating_point(design.circuit)
        # structural proxy: every device's source is a rail, a tail node
        # or ground-like; none sits on another device's drain-only node.
        from repro.spice.elements import Mosfet

        sources = {el.s for el in design.circuit if isinstance(el, Mosfet)}
        drains = {el.d for el in design.circuit if isinstance(el, Mosfet)}
        stacked = sources & drains - {"vdd", "vss"}
        # tail and cmfb nodes legitimately appear on both sides
        assert stacked <= {"tail", "tail_c", "cmfb", "dump"}
        _ = op

    def test_custom_sizes(self, tech):
        design = build_modulator_opamp(
            tech, sizes=ModulatorOpampSizes(i_pair=100e-6)
        )
        op = dc_operating_point(design.circuit)
        assert abs(op.mos_op("t5").ids) == pytest.approx(100e-6, rel=0.15)

    def test_supply_2_6v_operation(self, tech):
        design = build_modulator_opamp(tech, vdd=1.3, vss=-1.3)
        op = dc_operating_point(design.circuit)
        assert op.saturation_report() == []
