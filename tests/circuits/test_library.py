"""Mirror cells: the Sec. 2 cascode-compliance argument."""

import pytest

from repro.circuits.library import (
    build_cascode_mirror_cell,
    build_simple_mirror_cell,
    mirror_compliance_voltage,
    mirror_saturation_compliance,
)
from repro.spice import dc_operating_point


class TestSimpleMirror:
    def test_copies_reference_current(self, tech):
        cell = build_simple_mirror_cell(tech, i_ref=50e-6)
        op = dc_operating_point(cell.circuit)
        assert abs(op.mos_op("mn2").ids) == pytest.approx(50e-6, rel=0.1)

    def test_saturation_compliance_is_one_vdsat(self, tech):
        cell = build_simple_mirror_cell(tech, i_ref=50e-6)
        v_min = mirror_saturation_compliance(cell)
        op = dc_operating_point(cell.circuit)
        vdsat = op.mos_op("mn2").vdsat
        assert v_min == pytest.approx(vdsat, abs=0.15)

    def test_current_collapse_below_saturation(self, tech):
        cell = build_simple_mirror_cell(tech, i_ref=50e-6)
        v_current = mirror_compliance_voltage(cell)
        assert 0.05 < v_current < 0.5


class TestCascodeMirror:
    def test_compliance_is_vth_plus_2vdsat(self, tech):
        """Sec. 2: 'minimum supply voltage needed for proper operation of
        a regulated cascode current mirror must be greater than
        V_th + 2 V_dssat' (about 1.1 V; the plain stacked-diode cascode
        built here is even a little worse)."""
        cell = build_cascode_mirror_cell(tech, i_ref=50e-6)
        v_min = mirror_saturation_compliance(cell)
        op = dc_operating_point(cell.circuit)
        vth = op.mos_op("mn2").vth
        vdsat = op.mos_op("mn2").vdsat
        assert v_min > vth + vdsat  # > Vth + 2Vdsat-ish, >> one Vdsat
        assert 1.0 < v_min < 1.7

    def test_cascode_needs_far_more_headroom_than_simple(self, tech):
        simple = mirror_saturation_compliance(build_simple_mirror_cell(tech))
        cascode = mirror_saturation_compliance(build_cascode_mirror_cell(tech))
        # the paper's whole low-voltage argument in one inequality:
        assert cascode > simple + 0.5

    def test_cascode_copies_current_when_high(self, tech):
        cell = build_cascode_mirror_cell(tech, i_ref=50e-6)
        op = dc_operating_point(cell.circuit)
        assert abs(op.mos_op("mn2").ids) == pytest.approx(50e-6, rel=0.1)

    def test_compliance_exceeds_half_supply_of_split_rails(self, tech):
        """At +/-1.3 V rails a cascoded source would eat the entire
        half-swing: the quantitative reason 'cascoding is not possible'."""
        cascode = mirror_saturation_compliance(build_cascode_mirror_cell(tech))
        assert cascode > 0.5 * tech.vdd_nominal

    def test_cascode_output_resistance_advantage(self, tech):
        """What the headroom buys: far higher output resistance while it
        *is* saturated — the trade the paper had to give up."""
        import numpy as np
        from repro.spice.dc import dc_sweep

        r_out = {}
        for kind, build in (("simple", build_simple_mirror_cell),
                            ("cascode", build_cascode_mirror_cell)):
            cell = build(tech, i_ref=50e-6)
            volts = np.array([2.0, 2.4])
            data = dc_sweep(cell.circuit, "vo", volts, ["i(vo)"])
            di = abs(data["i(vo)"][1] - data["i(vo)"][0])
            r_out[kind] = 0.4 / max(di, 1e-15)
        assert r_out["cascode"] > 10.0 * r_out["simple"]
