"""Figs. 4/5 microphone amplifier: bias, gain programming, noise, Table 1."""

import numpy as np
import pytest

from repro.circuits.micamp import MicAmpSizes, build_mic_amp
from repro.spice import ac_analysis, dc_operating_point
from repro.spice.analysis import log_freqs
from repro.spice.noise import noise_analysis


class TestOperatingPoint:
    def test_converges_directly(self, mic_amp_op):
        assert mic_amp_op.strategy == "newton"

    def test_quiescent_current_within_table1(self, mic_amp_op):
        iq_ma = abs(mic_amp_op.i("vdd_src")) * 1e3
        assert iq_ma <= 2.6

    def test_every_gain_device_saturated(self, mic_amp_op):
        assert mic_amp_op.saturation_report() == []

    def test_outputs_at_analogue_ground(self, mic_amp_op):
        # residual CM offset of the single-stage CMFB loop: tens of mV
        assert abs(mic_amp_op.v("outp")) < 25e-3
        assert abs(mic_amp_op.v("outn")) < 25e-3

    def test_input_pairs_share_current_equally(self, mic_amp_op):
        ids = [abs(mic_amp_op.mos_op(t).ids) for t in ("t1", "t2", "t3", "t4")]
        assert max(ids) / min(ids) < 1.01

    def test_input_wells_tied_to_source(self, mic_amp_40db):
        """Sec. 3.2's substrate-noise rule doubles as body-effect removal."""
        for name in ("t1", "t2", "t3", "t4"):
            el = mic_amp_40db.circuit.element(name)
            assert el.b == el.s

    def test_feedback_inputs_have_no_dc_path_current(self, mic_amp_op):
        """DDA gates draw no current: the taps are unloaded, so the
        switch Ron causes no gain error (the Fig. 5 design point)."""
        sw_on = mic_amp_op.mos_op("swa_0")  # code 5: bottom tap switch on
        assert abs(sw_on.ids) < 1e-9


class TestGainProgramming:
    @pytest.fixture(scope="class")
    def gains_db(self, tech):
        design = build_mic_amp(tech, gain_code=0)
        values = []
        for code in range(6):
            design.set_gain_code(code)
            op = dc_operating_point(design.circuit)
            ac = ac_analysis(op, np.array([1e3]))
            values.append(20 * np.log10(abs(ac.vdiff("outp", "outn")[0])))
        return values

    def test_six_codes_10_to_40_db(self, gains_db):
        assert len(gains_db) == 6
        assert gains_db[0] == pytest.approx(10.0, abs=0.1)
        assert gains_db[-1] == pytest.approx(40.0, abs=0.1)

    def test_absolute_accuracy_005_db(self, gains_db):
        """Table 1: delta A_cl <= 0.05 dB."""
        for code, g in enumerate(gains_db):
            nominal = (10.0, 16.0, 22.0, 28.0, 34.0, 40.0)[code]
            assert abs(g - nominal) <= 0.05

    def test_steps_are_6_db(self, gains_db):
        steps = np.diff(gains_db)
        assert np.allclose(steps, 6.0, atol=0.05)

    def test_monotone(self, gains_db):
        assert all(b > a for a, b in zip(gains_db, gains_db[1:]))

    def test_ideal_switches_agree_with_mos(self, tech):
        mos_d = build_mic_amp(tech, gain_code=3, switch_type="mos")
        ideal_d = build_mic_amp(tech, gain_code=3, switch_type="ideal")
        results = []
        for d in (mos_d, ideal_d):
            op = dc_operating_point(d.circuit)
            ac = ac_analysis(op, np.array([1e3]))
            results.append(abs(ac.vdiff("outp", "outn")[0]))
        assert results[0] == pytest.approx(results[1], rel=1e-3)

    def test_bad_gain_code_rejected(self, tech):
        with pytest.raises(ValueError, match="out of range"):
            build_mic_amp(tech, gain_code=6)

    def test_bad_switch_type_rejected(self, tech):
        with pytest.raises(ValueError, match="switch_type"):
            build_mic_amp(tech, switch_type="relay")


class TestNoise:
    def test_table1_noise_rows(self, mic_amp_noise):
        assert mic_amp_noise.input_nv_at(300.0) <= 7.0
        assert mic_amp_noise.input_nv_at(1e3) <= 6.0
        avg = mic_amp_noise.average_input_density(300.0, 3400.0) * 1e9
        assert avg <= 5.1 * 1.3

    def test_average_close_to_paper_value(self, mic_amp_noise):
        """Shape criterion: within 30 % of 5.1 nV/rtHz."""
        avg = mic_amp_noise.average_input_density(300.0, 3400.0) * 1e9
        assert avg == pytest.approx(5.1, rel=0.3)

    def test_noise_rises_at_low_gain_codes(self, tech):
        """Eq. 4: R_a grows as the gain drops, so input noise grows."""
        design = build_mic_amp(tech, gain_code=0)
        op = dc_operating_point(design.circuit)
        freqs = np.array([10e3])
        nr_low = noise_analysis(op, freqs, "outp", "outn")
        design.set_gain_code(5)
        op = dc_operating_point(design.circuit)
        nr_high = noise_analysis(op, freqs, "outp", "outn")
        assert nr_low.input_nv()[0] > nr_high.input_nv()[0]

    def test_two_pairs_cost_3db(self, tech):
        """Sec. 3.1: 'two identical input pairs contribute 3 dB higher
        noise than a single-input stage pair'.  Compare the input-device
        noise share of the full DDA against half of it."""
        freqs = np.array([20e3])
        design = build_mic_amp(tech, gain_code=5)
        op = dc_operating_point(design.circuit)
        nr = noise_analysis(op, freqs, "outp", "outn")
        pair_a = sum(
            float(nr.contributions[(t, "thermal")][0]) for t in ("t1", "t2")
        )
        both = sum(
            float(nr.contributions[(t, "thermal")][0])
            for t in ("t1", "t2", "t3", "t4")
        )
        assert both == pytest.approx(2.0 * pair_a, rel=0.02)  # exactly +3 dB


class TestStability:
    def test_no_peaking_above_code_0(self, tech):
        design = build_mic_amp(tech, gain_code=1)
        freqs = log_freqs(1e3, 50e6, 8)
        for code in range(1, 6):
            design.set_gain_code(code)
            op = dc_operating_point(design.circuit)
            h = np.abs(ac_analysis(op, freqs).vdiff("outp", "outn"))
            assert h.max() / h[0] < 10 ** (0.5 / 20.0)

    def test_code0_peaking_is_out_of_band(self, tech):
        design = build_mic_amp(tech, gain_code=0)
        op = dc_operating_point(design.circuit)
        freqs = log_freqs(1e3, 50e6, 10)
        h = np.abs(ac_analysis(op, freqs).vdiff("outp", "outn"))
        peak_freq = freqs[int(np.argmax(h))]
        assert peak_freq > 100e3  # far above the 3.4 kHz voice band

    def test_voice_band_flat_at_every_code(self, tech):
        design = build_mic_amp(tech, gain_code=0)
        freqs = np.array([300.0, 1e3, 3.4e3])
        for code in range(6):
            design.set_gain_code(code)
            op = dc_operating_point(design.circuit)
            h = np.abs(ac_analysis(op, freqs).vdiff("outp", "outn"))
            assert np.ptp(20 * np.log10(h)) < 0.05


class TestSupplyRange:
    def test_works_at_2_6_v(self, tech):
        design = build_mic_amp(tech, vdd=1.3, vss=-1.3)
        op = dc_operating_point(design.circuit)
        ac = ac_analysis(op, np.array([1e3]))
        assert 20 * np.log10(abs(ac.vdiff("outp", "outn")[0])) == pytest.approx(
            40.0, abs=0.2
        )

    def test_rejects_hopeless_supply(self, tech):
        with pytest.raises(ValueError, match="supply too low"):
            build_mic_amp(tech, vdd=0.6, vss=-0.6)


class TestSizes:
    def test_custom_sizes_accepted(self, tech):
        sz = MicAmpSizes(i_stage2=0.3e-3)
        design = build_mic_amp(tech, sizes=sz)
        op = dc_operating_point(design.circuit)
        assert abs(op.mos_op("tp_a").ids) == pytest.approx(0.3e-3, rel=0.1)
