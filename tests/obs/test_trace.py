"""Span semantics: nesting, ids, export round-trips, arming scope."""

import threading

import pytest

from repro.obs.trace import (
    Tracer,
    active_tracer,
    current_context,
    format_slowest,
    format_tree,
    load_jsonl,
    seed_context,
    slowest_spans,
    span,
    trace_point,
)


@pytest.fixture
def tracer():
    t = Tracer()
    with t.activate():
        yield t
    assert active_tracer() is None


class TestDisarmed:
    def test_disarmed_span_is_shared_noop(self):
        assert active_tracer() is None
        a = span("x")
        b = span("y", attr=1)
        assert a is b                   # one shared _NullSpan instance
        with a:
            pass
        a.annotate(ignored=True)        # no-op, no error

    def test_disarmed_trace_point_records_nothing(self):
        assert active_tracer() is None
        trace_point("x", n=3)           # nothing to assert beyond no crash

    def test_disarmed_leaves_no_context(self):
        with span("x"):
            assert current_context() is None


class TestArmed:
    def test_span_records_one_dict(self, tracer):
        with span("campaign.run", builder="bias", n_units=2):
            pass
        (s,) = tracer.spans()
        assert s["name"] == "campaign.run"
        assert s["parent_id"] is None
        assert s["attrs"] == {"builder": "bias", "n_units": 2}
        assert s["dur_s"] >= 0.0
        assert len(s["trace_id"]) == 16 and len(s["span_id"]) == 16

    def test_nesting_sets_parent_and_shares_trace_id(self, tracer):
        with span("outer") as outer:
            with span("inner"):
                pass
        inner, recorded_outer = tracer.spans()
        assert inner["name"] == "inner"          # children finish first
        assert inner["parent_id"] == outer.span_id
        assert inner["trace_id"] == recorded_outer["trace_id"]

    def test_trace_point_nests_under_open_span(self, tracer):
        with span("outer") as outer:
            trace_point("event", k=1)
        point, _ = tracer.spans()
        assert point["dur_s"] == 0.0
        assert point["parent_id"] == outer.span_id
        assert point["attrs"] == {"k": 1}

    def test_sibling_spans_get_fresh_trace_ids(self, tracer):
        with span("a"):
            pass
        with span("b"):
            pass
        a, b = tracer.spans()
        assert a["trace_id"] != b["trace_id"]

    def test_exception_annotates_and_restores_context(self, tracer):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        (s,) = tracer.spans()
        assert s["attrs"]["error"] == "ValueError"
        assert current_context() is None

    def test_annotate_lands_in_attrs(self, tracer):
        with span("x") as s:
            s.annotate(units=5)
        assert tracer.spans()[0]["attrs"]["units"] == 5

    def test_context_is_per_thread(self, tracer):
        seen = {}

        def other():
            seen["ctx"] = current_context()
            with span("child"):
                pass

        with span("parent"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert seen["ctx"] is None      # the open span is not visible there
        child = next(s for s in tracer.spans() if s["name"] == "child")
        assert child["parent_id"] is None

    def test_seed_context_adopts_remote_parent(self, tracer):
        with span("parent") as parent:
            ctx = current_context()
        with seed_context(*ctx):
            with span("remote"):
                pass
        remote = next(s for s in tracer.spans() if s["name"] == "remote")
        assert remote["trace_id"] == parent.trace_id
        assert remote["parent_id"] == parent.span_id
        assert current_context() is None


class TestTracer:
    def test_buffer_evicts_oldest(self):
        t = Tracer(buffer=3)
        with t.activate():
            for i in range(5):
                trace_point(f"p{i}")
        assert t.recorded == 5
        assert [s["name"] for s in t.spans()] == ["p2", "p3", "p4"]

    def test_absorb_preserves_foreign_ids(self, tracer):
        foreign = [{"trace_id": "t" * 16, "span_id": "s" * 16,
                    "parent_id": None, "name": "remote", "t0": 0.0,
                    "dur_s": 0.1, "attrs": {}, "pid": 1}]
        tracer.absorb(foreign)
        assert tracer.spans()[0]["span_id"] == "s" * 16

    def test_spans_filter_by_trace_id(self, tracer):
        with span("a"):
            pass
        with span("b"):
            pass
        a, b = tracer.spans()
        only = tracer.spans(trace_id=b["trace_id"])
        assert only == [b]
        assert tracer.trace_ids() == [a["trace_id"], b["trace_id"]]

    def test_export_jsonl_round_trips(self, tracer, tmp_path):
        with span("outer", k=1):
            trace_point("p")
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        assert load_jsonl(path) == tracer.spans()

    def test_live_export_appends_per_span(self, tmp_path):
        path = tmp_path / "live.jsonl"
        t = Tracer(export_path=path)
        with t.activate():
            with span("x"):
                pass
        t.close()
        assert load_jsonl(path) == t.spans()

    def test_activate_restores_previous_tracer(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is None

    def test_bad_buffer_rejected(self):
        with pytest.raises(ValueError):
            Tracer(buffer=0)


class TestFormatTree:
    def test_tree_indents_children_under_trace(self, tracer):
        with span("outer"):
            with span("inner"):
                pass
        text = format_tree(tracer.spans())
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert lines[1].strip().startswith("outer")
        assert lines[2].startswith("    inner")

    def test_orphaned_parent_surfaces_at_root(self):
        spans = [{"trace_id": "t1", "span_id": "s1", "parent_id": "gone",
                  "name": "orphan", "t0": 0.0, "dur_s": 0.0, "attrs": {}}]
        text = format_tree(spans)
        assert "orphan" in text


class TestSlowestSpans:
    def _spans(self):
        # parent covers 1.0s, child burns 0.9 of it; a sibling leaf
        # burns 0.5 on its own.
        return [
            {"trace_id": "t1", "span_id": "p", "parent_id": None,
             "name": "parent", "t0": 0.0, "dur_s": 1.0, "attrs": {}},
            {"trace_id": "t1", "span_id": "c", "parent_id": "p",
             "name": "child", "t0": 0.0, "dur_s": 0.9, "attrs": {}},
            {"trace_id": "t2", "span_id": "leaf", "parent_id": None,
             "name": "leaf", "t0": 0.0, "dur_s": 0.5, "attrs": {}},
        ]

    def test_ranks_by_self_time_not_total(self):
        ranked = slowest_spans(self._spans())
        assert [s["name"] for s in ranked] == ["child", "leaf", "parent"]
        assert ranked[0]["self_s"] == pytest.approx(0.9)
        assert ranked[2]["self_s"] == pytest.approx(0.1)

    def test_self_time_clamped_at_zero(self):
        spans = self._spans()
        spans[1]["dur_s"] = 1.5  # child "longer" than parent (clock skew)
        parent = next(s for s in slowest_spans(spans)
                      if s["name"] == "parent")
        assert parent["self_s"] == 0.0

    def test_top_limits_and_originals_untouched(self):
        spans = self._spans()
        ranked = slowest_spans(spans, top=1)
        assert len(ranked) == 1
        assert all("self_s" not in s for s in spans)

    def test_format_slowest_renders_rows(self):
        text = format_slowest(self._spans(), top=2)
        lines = text.splitlines()
        assert lines[0] == "slowest 2 spans by self-time:"
        assert "child" in lines[1] and "trace t1" in lines[1]
        assert format_slowest([]) == ""
