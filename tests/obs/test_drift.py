"""Drift watchdog: EWMA baseline math, flagging, and the gate exit."""

import json

import pytest

from repro.obs import drift
from repro.obs.drift import analyze, ewma_baseline, format_flags, report


def _payload(values, smoke_latest=False, metric="units_per_s"):
    points = [{metric: v, "smoke": False} for v in values]
    if smoke_latest:
        points[-1]["smoke"] = True
    return {"campaign_trajectory": points}


class TestEwma:
    def test_constant_series_has_zero_spread(self):
        mean, std = ewma_baseline([5.0, 5.0, 5.0, 5.0])
        assert mean == 5.0
        assert std == 0.0

    def test_mean_tracks_toward_recent(self):
        mean, _ = ewma_baseline([1.0, 1.0, 1.0, 10.0], alpha=0.5)
        assert 1.0 < mean < 10.0
        drifted, _ = ewma_baseline([1.0, 10.0, 10.0, 10.0], alpha=0.5)
        assert drifted > mean, "recent points must weigh more"

    def test_variance_widens_on_noise(self):
        _, tight = ewma_baseline([10.0, 10.1, 9.9, 10.0])
        _, loose = ewma_baseline([10.0, 14.0, 6.0, 12.0])
        assert loose > tight


class TestAnalyze:
    def test_stable_series_not_flagged(self):
        flags = analyze(_payload([100.0, 101.0, 99.0, 100.5, 100.0]))
        assert flags == []

    def test_step_change_flagged(self):
        flags = analyze(_payload([100.0, 101.0, 99.0, 100.0, 55.0]))
        assert len(flags) == 1
        (flag,) = flags
        assert flag["trajectory"] == "campaign_trajectory"
        assert flag["metric"] == "units_per_s"
        assert flag["z"] < -3.0

    def test_needs_minimum_history(self):
        # Two baseline points: never judged, however wild the move.
        assert analyze(_payload([100.0, 100.0, 5.0])) == []

    def test_smoke_latest_never_judged(self):
        flags = analyze(_payload([100.0, 101.0, 99.0, 100.0, 5.0],
                                 smoke_latest=True))
        assert flags == []

    def test_smoke_points_excluded_from_baseline(self):
        points = [{"m": 100.0, "smoke": False} for _ in range(4)]
        points.insert(2, {"m": 2.0, "smoke": True})
        points.append({"m": 100.0, "smoke": False})
        assert analyze({"t_trajectory": points}, min_points=3) == []

    def test_rel_floor_absorbs_host_jitter(self):
        # 1% wiggle on a tight baseline must not flag: the relative
        # std floor widens suspiciously tight bands.
        flags = analyze(_payload([100.0, 100.0, 100.0, 100.0, 101.0]))
        assert flags == []

    def test_non_numeric_and_bool_keys_ignored(self):
        points = [{"host": "a", "ok": True, "m": 1.0, "smoke": False}
                  for _ in range(5)]
        assert analyze({"t_trajectory": points}) == []

    def test_format_flags(self):
        flags = analyze(_payload([100.0, 101.0, 99.0, 100.0, 55.0]))
        text = "\n".join(format_flags(flags))
        assert "campaign_trajectory.units_per_s" in text
        assert "z=" in text


class TestReport:
    def test_delta_lines_preserved(self):
        lines = report(_payload([100.0, 80.0]))
        text = "\n".join(lines)
        assert "prev -> latest" in text
        assert "DRIFT" in text

    def test_empty_payload(self):
        assert "no *_trajectory" in report({})[0]


class TestGate:
    def _write(self, tmp_path, values):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(_payload(values)))
        return str(path)

    def test_clean_gate_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, [100.0, 101.0, 99.0, 100.0, 100.2])
        assert drift.main([path, "--gate"]) == 0
        assert "no drift flagged" in capsys.readouterr().out

    def test_drift_gates_exit_one(self, tmp_path, capsys):
        path = self._write(tmp_path, [100.0, 101.0, 99.0, 100.0, 55.0])
        assert drift.main([path, "--gate"]) == 1
        assert "drifted" in capsys.readouterr().out

    def test_warn_only_downgrades_gate(self, tmp_path, capsys):
        path = self._write(tmp_path, [100.0, 101.0, 99.0, 100.0, 55.0])
        assert drift.main([path, "--gate", "--warn-only"]) == 0
        assert "not gating" in capsys.readouterr().out

    def test_no_gate_never_fails(self, tmp_path):
        path = self._write(tmp_path, [100.0, 101.0, 99.0, 100.0, 55.0])
        assert drift.main([path]) == 0

    def test_missing_file_is_zero(self, tmp_path):
        assert drift.main([str(tmp_path / "nope.json")]) == 0

    def test_invalid_json_is_zero(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert drift.main([str(path)]) == 0
