"""Profiler accumulators: counting, timing, merging, arming scope."""

import pytest

from repro.obs.profile import (
    Profiler,
    active_profiler,
    format_profile,
    prof_add,
    prof_count,
    timed,
)


@pytest.fixture
def profiler():
    p = Profiler()
    with p.activate():
        yield p
    assert active_profiler() is None


class TestDisarmed:
    def test_disarmed_hooks_are_inert(self):
        assert active_profiler() is None
        prof_count("x")
        prof_add("x", 1.0)
        with timed("x"):
            pass

    def test_disarmed_timed_is_shared_noop(self):
        assert timed("a") is timed("b")


class TestArmed:
    def test_count_accumulates(self, profiler):
        prof_count("newton.iterations")
        prof_count("newton.iterations", 4)
        assert profiler.snapshot()["counts"] == {"newton.iterations": 5}

    def test_add_time_accumulates(self, profiler):
        prof_add("phase", 0.25)
        prof_add("phase", 0.5)
        assert profiler.snapshot()["times_s"]["phase"] == pytest.approx(0.75)

    def test_timed_records_elapsed(self, profiler):
        with timed("slow"):
            pass
        assert profiler.snapshot()["times_s"]["slow"] >= 0.0

    def test_snapshot_keys_sorted(self, profiler):
        prof_count("b")
        prof_count("a")
        assert list(profiler.snapshot()["counts"]) == ["a", "b"]

    def test_merge_folds_remote_snapshot(self, profiler):
        prof_count("units", 2)
        profiler.merge({"counts": {"units": 3, "solves": 1},
                        "times_s": {"lu": 0.5}})
        snap = profiler.snapshot()
        assert snap["counts"] == {"solves": 1, "units": 5}
        assert snap["times_s"] == {"lu": 0.5}

    def test_merge_tolerates_partial_snapshot(self, profiler):
        profiler.merge({})
        profiler.merge({"counts": None, "times_s": None})
        assert profiler.snapshot() == {"counts": {}, "times_s": {}}

    def test_clear_empties_both_tables(self, profiler):
        prof_count("x")
        prof_add("y", 1.0)
        profiler.clear()
        assert profiler.snapshot() == {"counts": {}, "times_s": {}}

    def test_activate_restores_previous(self):
        outer, inner = Profiler(), Profiler()
        with outer.activate():
            with inner.activate():
                prof_count("seen")
            assert active_profiler() is outer
        assert active_profiler() is None
        assert inner.snapshot()["counts"] == {"seen": 1}
        assert outer.snapshot()["counts"] == {}


class TestFormat:
    def test_format_orders_times_then_counts(self):
        text = format_profile({"counts": {"n": 3},
                               "times_s": {"fast": 0.001, "slow": 2.0}})
        lines = text.splitlines()
        assert lines[0] == "profile — timed phases:"
        assert "slow" in lines[1] and "fast" in lines[2]
        assert "counters" in lines[3] and "n" in lines[4]

    def test_format_empty_snapshot(self):
        assert "empty" in format_profile({"counts": {}, "times_s": {}})
