"""``repro doctor``: per-check verdicts and the pinned exit codes.

The contract scripts and CI branch on: exit 0 healthy, 1 any warn
(bench drift flagged, error events in the log), 2 any fail (store
corruption, a sanity solve that does not converge).
"""

import json

import pytest

from repro.obs import doctor
from repro.obs.doctor import (
    check_bench,
    check_engine,
    check_events,
    check_store,
    format_report,
    run_doctor,
)
from repro.obs.events import EventLog, deactivate, event
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    deactivate()


def _drifting_bench(tmp_path):
    points = [{"units_per_s": v, "smoke": False}
              for v in (100.0, 101.0, 99.0, 100.0, 55.0)]
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"campaign_trajectory": points}))
    return path


def _stable_bench(tmp_path):
    points = [{"units_per_s": v, "smoke": False}
              for v in (100.0, 101.0, 99.0, 100.0, 100.3)]
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"campaign_trajectory": points}))
    return path


class TestChecks:
    def test_engine_passes_on_healthy_tree(self):
        check = check_engine()
        assert check["status"] == "pass"
        assert "converged" in check["detail"]

    def test_engine_fails_on_nonconvergence(self, monkeypatch):
        from repro.spice import dc

        def no_converge(circuit, **kw):
            raise dc.ConvergenceError("did not converge in 200 iterations")

        monkeypatch.setattr(dc, "dc_operating_point", no_converge)
        check = check_engine()
        assert check["status"] == "fail"
        assert "ConvergenceError" in check["detail"]

    def test_store_passes_when_intact(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put("k1", {"v": 1})
        check = check_store(tmp_path / "s")
        assert check["status"] == "pass"
        assert "1/1" in check["detail"]

    def test_store_fails_on_corruption(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put("k1", {"v": 1})
            store._object_path("k1").write_text("{torn")
        check = check_store(tmp_path / "s")
        assert check["status"] == "fail"
        assert "quarantined" in check["detail"]

    def test_store_skips_when_absent(self, tmp_path):
        assert check_store(tmp_path / "nope")["status"] == "pass"

    def test_bench_warns_on_drift(self, tmp_path):
        check = check_bench(_drifting_bench(tmp_path))
        assert check["status"] == "warn"
        assert "drifted" in check["detail"]

    def test_bench_passes_when_stable(self, tmp_path):
        assert check_bench(_stable_bench(tmp_path))["status"] == "pass"

    def test_events_warn_on_errors_in_active_log(self):
        log = EventLog()
        with log.activate():
            event("store.quarantine", "error", key="k")
            check = check_events()
        assert check["status"] == "warn"
        assert "store.quarantine" in check["detail"]

    def test_events_triage_from_jsonl(self, tmp_path):
        log = EventLog()
        with log.activate():
            event("serve.worker_died", "error", worker="w0")
        path = tmp_path / "events.jsonl"
        log.export_jsonl(path)
        check = check_events(path)
        assert check["status"] == "warn"
        assert "serve.worker_died" in check["detail"]

    def test_events_pass_when_disarmed(self):
        assert check_events()["status"] == "pass"


class TestExitCodes:
    def test_healthy_tree_exits_zero(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put("k1", {"v": 1})
        checks, code = run_doctor(store=tmp_path / "s",
                                  bench=_stable_bench(tmp_path))
        assert code == 0
        assert all(c["status"] == "pass" for c in checks)

    def test_bench_drift_exits_one(self, tmp_path):
        _, code = run_doctor(bench=_drifting_bench(tmp_path))
        assert code == 1

    def test_corrupted_store_exits_two(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put("k1", {"v": 1})
            store._object_path("k1").write_text("{torn")
        _, code = run_doctor(store=tmp_path / "s")
        assert code == 2

    def test_fail_beats_warn(self, tmp_path, monkeypatch):
        from repro.spice import dc

        monkeypatch.setattr(
            dc, "dc_operating_point",
            lambda circuit, **kw: (_ for _ in ()).throw(
                dc.ConvergenceError("stuck")))
        _, code = run_doctor(bench=_drifting_bench(tmp_path))
        assert code == 2

    def test_main_exit_matches_run_doctor(self, tmp_path, capsys):
        assert doctor.main(["--bench", str(_drifting_bench(tmp_path))]) == 1
        out = capsys.readouterr().out
        assert "repro doctor" in out
        assert "[WARN]" in out
        assert "exit 1" in out

    def test_report_has_verdict_line(self):
        checks, code = run_doctor()
        lines = format_report(checks, code)
        assert lines[0] == "repro doctor"
        assert lines[-1].startswith("verdict:")


class TestCli:
    def test_repro_doctor_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        with ResultStore(tmp_path / "s") as store:
            store.put("k1", {"v": 1})
        code = main(["doctor", "--store", str(tmp_path / "s"),
                     "--bench", str(_stable_bench(tmp_path))])
        assert code == 0
        assert "verdict: healthy" in capsys.readouterr().out

    def test_repro_doctor_corrupt_store(self, tmp_path, capsys):
        from repro.cli import main

        with ResultStore(tmp_path / "s") as store:
            store.put("k1", {"v": 1})
            store._object_path("k1").write_text("{torn")
        code = main(["doctor", "--store", str(tmp_path / "s")])
        assert code == 2
        assert "verdict: unhealthy" in capsys.readouterr().out
