"""Histogram math and the Prometheus text exposition.

The quantile contract: estimates are exact at bucket edges and off by
at most one bucket width inside, which is pinned here against
``numpy.quantile`` on known data.
"""

import math
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    parse_prometheus,
    render_prometheus,
    sanitize,
)


class TestHistogramBasics:
    def test_counts_and_sum(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.0)

    def test_snapshot_buckets_are_cumulative_and_end_at_total(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 8.0):
            h.observe(v)
        buckets = h.snapshot()["buckets"]
        counts = [b["count"] for b in buckets]
        assert counts == sorted(counts)             # monotone
        assert buckets[-1]["le"] == "+Inf"
        assert buckets[-1]["count"] == 4            # includes overflow
        assert counts[:-1] == [2, 3, 3]

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_overflow_quantile_clamps_to_last_bound(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == 2.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, math.inf))

    def test_quantiles_labels(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        assert set(h.quantiles()) == {"p50", "p95", "p99"}

    def test_default_buckets_span_ms_to_minute(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0


class TestQuantileVsNumpy:
    """Pin the interpolation against numpy on known distributions."""

    def test_uniform_samples_within_one_bucket_width(self):
        rng = np.random.default_rng(7)
        data = rng.uniform(0.0, 1.0, size=5000)
        width = 0.1
        h = Histogram(buckets=np.arange(width, 1.0 + width / 2, width))
        for v in data:
            h.observe(v)
        for q in (0.5, 0.9, 0.95, 0.99):
            ref = float(np.quantile(data, q))
            assert abs(h.quantile(q) - ref) <= width, (q, h.quantile(q), ref)

    def test_exponential_samples_within_owning_bucket(self):
        rng = np.random.default_rng(11)
        data = rng.exponential(scale=0.05, size=5000)
        bounds = list(DEFAULT_BUCKETS)
        h = Histogram()
        for v in data:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            ref = float(np.quantile(data, q))
            est = h.quantile(q)
            # the estimate and truth must share a bucket or be adjacent
            lo = max([0.0] + [b for b in bounds if b <= ref])
            hi = min([b for b in bounds if b >= ref] or [bounds[-1]])
            assert lo - (hi - lo) <= est <= hi + (hi - lo), (q, est, ref)

    def test_point_mass_stays_inside_owning_bucket(self):
        # Interpolation spreads a bucket's mass uniformly, so a point
        # mass at 2.0 (bucket (1, 2]) estimates inside that bucket —
        # off by at most one bucket width — and is exact at q=1.
        h = Histogram(buckets=(1.0, 2.0, 3.0))
        for _ in range(100):
            h.observe(2.0)
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_median_of_evenly_filled_buckets(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5,) * 50 + (1.5,) * 50:
            h.observe(v)
        # rank 50 falls exactly at the first bucket's upper edge
        assert h.quantile(0.5) == pytest.approx(1.0)


class TestHistogramConcurrency:
    def test_parallel_observe_loses_nothing(self):
        h = Histogram(buckets=(0.5, 1.0))
        n_threads, per_thread = 8, 2000

        def work():
            for i in range(per_thread):
                h.observe(0.25 if i % 2 else 0.75)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap["count"] == n_threads * per_thread
        assert snap["sum"] == pytest.approx(n_threads * per_thread * 0.5)


class TestPrometheus:
    def test_render_and_parse_round_trip(self):
        h = Histogram(buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = render_prometheus(
            counters={"jobs_done": 3},
            gauges={"queue_depth": 2.0},
            histograms={"http.request_s": h},
        )
        series = parse_prometheus(text)
        assert series["repro_jobs_done_total"]["type"] == "counter"
        assert series["repro_jobs_done_total"]["samples"] == [
            ("repro_jobs_done_total", 3.0)]
        assert series["repro_queue_depth"]["type"] == "gauge"
        hist = series["repro_http_request_s"]
        assert hist["type"] == "histogram"
        buckets = [(labels, v) for labels, v in hist["samples"]
                   if "_bucket" in labels]
        assert buckets[-1][0].endswith('le="+Inf"} ') is False  # labels text
        counts = [v for _, v in buckets]
        assert counts == sorted(counts)             # cumulative
        assert counts[-1] == 2.0
        assert ("repro_http_request_s_count", 2.0) in hist["samples"]

    def test_every_series_has_help_and_type(self):
        text = render_prometheus(counters={"a": 1}, gauges={"b": 2},
                                 histograms={"c": Histogram().snapshot()})
        for name, series in parse_prometheus(text).items():
            assert series["type"] in ("counter", "gauge", "histogram"), name
            assert series["help"], name

    def test_snapshot_dict_accepted_for_histograms(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        from_obj = render_prometheus(histograms={"x": h})
        from_snap = render_prometheus(histograms={"x": h.snapshot()})
        assert from_obj == from_snap

    def test_sanitize_maps_dots_to_underscores(self):
        assert sanitize("http.request_s") == "http_request_s"
        assert sanitize("store-entries") == "store_entries"

    def test_counter_names_get_total_suffix(self):
        text = render_prometheus(counters={"jobs_done": 1})
        assert "repro_jobs_done_total 1" in text
