"""``REPRO_OBS`` grammar and process-wide arming."""

import pytest

from repro.obs import harness
from repro.obs.harness import ObsConfig, arm, arm_from_env, config_from_env
from repro.obs.profile import active_profiler, deactivate as prof_deactivate
from repro.obs.trace import active_tracer, deactivate as trace_deactivate


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    trace_deactivate()
    prof_deactivate()


class TestGrammar:
    def test_one_means_everything(self):
        for spec in ("1", "all", "on", "true", "ON"):
            config = config_from_env(spec)
            assert config.trace and config.profile and config.metrics

    def test_single_components(self):
        assert config_from_env("trace").trace
        assert not config_from_env("trace").profile
        assert config_from_env("profile").profile
        assert config_from_env("metrics").metrics

    def test_semicolon_and_comma_both_separate(self):
        for spec in ("trace;profile", "trace,profile", " trace ; profile "):
            config = config_from_env(spec)
            assert config.trace and config.profile and not config.metrics

    def test_trace_options(self):
        config = config_from_env("trace:export=/tmp/s.jsonl:buffer=128")
        assert config.trace_export == "/tmp/s.jsonl"
        assert config.trace_buffer == 128

    def test_export_requires_trace_component(self):
        with pytest.raises(ValueError, match="export= applies to trace"):
            config_from_env("profile:export=/tmp/x")

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown component"):
            config_from_env("telemetry")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            config_from_env("trace:color=on")

    def test_empty_parts_ignored(self):
        config = config_from_env(";;trace;;")
        assert config.trace and not config.profile

    def test_any_flag(self):
        assert not ObsConfig().any
        assert ObsConfig(metrics=True).any


class TestArming:
    def test_arm_activates_requested_components(self):
        armed = arm(ObsConfig(trace=True, profile=True))
        assert active_tracer() is armed["tracer"]
        assert active_profiler() is armed["profiler"]

    def test_metrics_only_arms_nothing_global(self):
        armed = arm(ObsConfig(metrics=True))
        assert armed == {}
        assert active_tracer() is None and active_profiler() is None

    def test_arm_honours_trace_options(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        armed = arm(ObsConfig(trace=True, trace_export=path,
                              trace_buffer=42))
        tracer = armed["tracer"]
        assert tracer.export_path == path
        assert tracer._buffer == 42
        tracer.close()

    def test_arm_from_env_unset_is_inert(self):
        assert arm_from_env(environ={}) is None
        assert arm_from_env(environ={harness.OBS_ENV: ""}) is None
        assert active_tracer() is None and active_profiler() is None

    def test_arm_from_env_set_arms(self):
        armed = arm_from_env(environ={harness.OBS_ENV: "trace;profile"})
        assert "tracer" in armed and "profiler" in armed
        assert active_tracer() is armed["tracer"]
