"""Structured event log: ring semantics, the hook, arming grammar."""

import json

import pytest

from repro.obs.events import (
    EventLog,
    active_event_log,
    deactivate,
    event,
    format_events,
    load_jsonl,
)
from repro.obs.harness import ObsConfig, arm, config_from_env, events_enabled
from repro.obs.profile import deactivate as prof_deactivate
from repro.obs.trace import Tracer, deactivate as trace_deactivate, span


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    deactivate()
    trace_deactivate()
    prof_deactivate()


def _ev(name="x", severity="warn", **fields):
    return {"name": name, "severity": severity, "t": 0.0,
            "trace_id": None, "span_id": None, "pid": 1, "fields": fields}


class TestEventLog:
    def test_ring_overflow_keeps_newest_and_counts_drops(self):
        log = EventLog(buffer=3)
        for i in range(10):
            log.record(_ev(name=f"e{i}"))
        names = [e["name"] for e in log.events()]
        assert names == ["e7", "e8", "e9"]
        assert log.dropped == 7
        assert log.recorded == 10

    def test_severity_counts_survive_eviction(self):
        log = EventLog(buffer=2)
        for _ in range(5):
            log.record(_ev(severity="error"))
        log.record(_ev(severity="info"))
        counts = log.severity_counts()
        assert counts == {"info": 1, "warn": 0, "error": 5}
        assert len(log.events()) == 2

    def test_filters(self):
        log = EventLog()
        log.record(_ev(name="a", severity="info"))
        log.record(_ev(name="b", severity="error"))
        log.record(_ev(name="a", severity="error"))
        assert len(log.events(name="a")) == 2
        assert len(log.events(severity="error")) == 2
        assert len(log.events(name="a", severity="error")) == 1

    def test_absorb_preserves_provenance(self):
        parent, child = EventLog(), EventLog()
        child.record({"name": "c", "severity": "warn", "t": 1.0,
                      "trace_id": "t1", "span_id": "s1", "pid": 999,
                      "fields": {"k": 1}})
        parent.absorb(child.events())
        (got,) = parent.events()
        assert got["pid"] == 999
        assert got["trace_id"] == "t1"
        assert parent.severity_counts()["warn"] == 1

    def test_export_roundtrip(self, tmp_path):
        log = EventLog()
        log.record(_ev(name="a", k=1))
        log.record(_ev(name="b", severity="error"))
        path = tmp_path / "events.jsonl"
        assert log.export_jsonl(path) == 2
        back = load_jsonl(path)
        assert back == log.events()

    def test_live_export_appends_per_event(self, tmp_path):
        path = tmp_path / "live.jsonl"
        log = EventLog(export_path=str(path))
        log.record(_ev(name="a"))
        # Flushed per line: readable before close.
        assert json.loads(path.read_text().splitlines()[0])["name"] == "a"
        log.record(_ev(name="b"))
        log.close()
        assert [e["name"] for e in load_jsonl(path)] == ["a", "b"]

    def test_buffer_must_be_positive(self):
        with pytest.raises(ValueError, match="buffer"):
            EventLog(buffer=0)


class TestEventHook:
    def test_disarmed_is_inert(self):
        assert active_event_log() is None
        event("noop.event", "error", detail="ignored")  # must not raise

    def test_armed_records_fields(self):
        log = EventLog()
        with log.activate():
            event("dc.test", "error", resid=1.5, circuit="bias")
        (got,) = log.events()
        assert got["name"] == "dc.test"
        assert got["severity"] == "error"
        assert got["fields"] == {"resid": 1.5, "circuit": "bias"}
        assert got["trace_id"] is None

    def test_default_severity_is_warn(self):
        log = EventLog()
        with log.activate():
            event("x")
        assert log.events()[0]["severity"] == "warn"

    def test_trace_correlation_under_span(self):
        tracer, log = Tracer(), EventLog()
        with tracer.activate(), log.activate():
            with span("outer") as handle:
                event("inner.event")
        (got,) = log.events()
        assert got["trace_id"] == handle.trace_id
        assert got["span_id"] is not None

    def test_activate_restores_previous(self):
        outer, inner = EventLog(), EventLog()
        with outer.activate():
            with inner.activate():
                event("deep")
            event("shallow")
        assert [e["name"] for e in inner.events()] == ["deep"]
        assert [e["name"] for e in outer.events()] == ["shallow"]
        assert active_event_log() is None

    def test_format_events_renders(self):
        log = EventLog()
        with log.activate():
            event("store.quarantine", "error", key="k1")
        text = format_events(log.events())
        assert "store.quarantine" in text
        assert "key='k1'" in text


class TestGrammar:
    def test_events_component(self):
        config = config_from_env("events")
        assert config.events and not config.trace

    def test_one_arms_events_too(self):
        assert config_from_env("1").events
        assert config_from_env("all").events

    def test_events_options(self):
        config = config_from_env("events:export=/tmp/e.jsonl:buffer=99")
        assert config.events_export == "/tmp/e.jsonl"
        assert config.events_buffer == 99
        assert config.trace_export is None
        assert config.trace_buffer == 65536

    def test_export_on_profile_still_rejected(self):
        with pytest.raises(ValueError, match="export= applies to"):
            config_from_env("profile:export=/tmp/x")

    def test_unknown_component_lists_events(self):
        with pytest.raises(ValueError, match="events"):
            config_from_env("telemetry")

    def test_arm_activates_event_log(self, tmp_path):
        armed = arm(ObsConfig(events=True, events_buffer=7,
                              events_export=str(tmp_path / "e.jsonl")))
        try:
            assert events_enabled()
            assert armed["events"] is active_event_log()
            assert armed["events"]._buffer == 7
        finally:
            deactivate()
