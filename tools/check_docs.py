#!/usr/bin/env python
"""Fail CI on broken intra-repo links in the markdown docs.

Scans ``README.md`` and ``docs/*.md`` for markdown links/images and
verifies that every *relative* target (no scheme, no mailto) exists on
disk, resolved against the file containing the link. Anchors are
stripped (``file.md#section`` checks ``file.md``); ``http(s)://`` links
are ignored — CI must not depend on the network.

Usage::

    python tools/check_docs.py [files...]     # default: README.md docs/*.md
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# [text](target) and ![alt](target); stops at the first unescaped ')'.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Inline/fenced code spans can contain "[x](y)"-shaped text that is not
# a link (e.g. numpy slices in code examples).
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_CODE_RE = re.compile(r"`[^`]*`")


def iter_links(text: str):
    cleaned = _CODE_RE.sub("", _FENCE_RE.sub("", text))
    for match in _LINK_RE.finditer(cleaned):
        yield match.group(1)


def check_file(path: pathlib.Path) -> list[str]:
    errors = []
    for target in iter_links(path.read_text()):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue                        # http:, https:, mailto:, ...
        bare = target.split("#", 1)[0]
        if not bare:
            continue                        # pure in-page anchor
        resolved = (path.parent / bare).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [pathlib.Path(a).resolve() for a in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"ERROR: no such file {f}")
        return 1
    errors: list[str] = []
    checked = 0
    for f in files:
        errors.extend(check_file(f))
        checked += 1
    for err in errors:
        print(f"ERROR: {err}")
    print(f"checked {checked} file(s): "
          f"{'FAIL' if errors else 'ok'} ({len(errors)} broken link(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
