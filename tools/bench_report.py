#!/usr/bin/env python
"""Thin wrapper: the bench trajectory report lives in
:mod:`repro.obs.drift` now (same delta lines, plus the EWMA drift
watchdog and its ``--gate`` exit code).  This script survives so that
``python tools/bench_report.py`` keeps working from muscle memory and
old CI configs; it simply forwards its arguments.

Usage::

    python tools/bench_report.py [BENCH_perf.json] [--gate] [--warn-only]
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.drift import main  # noqa: E402

if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream closed early (`bench_report | head`); not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
