#!/usr/bin/env python
"""Print benchmark trajectory deltas from ``BENCH_perf.json``.

Every perf bench appends one point to its ``*_trajectory`` list on each
full run (``campaign_trajectory``, ``serve_trajectory``, ...).  This
tool reads the file back and prints, per trajectory and per numeric
metric, the previous -> latest delta and the full first -> latest
drift — so a batched speedup quietly sliding 10.1x -> 8.7x across PRs
is *seen*, not discovered months later.

Moves beyond ``DRIFT_THRESHOLD`` are flagged with ``DRIFT``; the flag
is informational and the exit code is always 0 (smoke points mix with
full points and hosts differ run to run) — CI runs this as a
non-gating report step.  The per-entry provenance block
(``platform/cpu_count/single_cpu/numpy/scipy``, stamped by
``benchmarks/provenance.py``) is printed alongside so a "regression"
that coincides with a machine change can be attributed to the machine.

Usage::

    python tools/bench_report.py [BENCH_perf.json]
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Relative moves larger than this are flagged (informational only).
DRIFT_THRESHOLD = 0.10

PROVENANCE_KEYS = ("platform", "cpu_count", "single_cpu", "numpy", "scipy")


def _numeric_keys(points: list[dict]) -> list[str]:
    """Metric keys worth comparing: numeric, non-bool, present in the
    latest point."""
    latest = points[-1]
    return [k for k, v in latest.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _delta_line(name: str, old, new, label: str) -> str:
    line = f"    {name:<28} {_fmt(old):>10} -> {_fmt(new):>10}  ({label})"
    if isinstance(old, (int, float)) and old:
        rel = (new - old) / abs(old)
        line += f"  {rel:+.1%}"
        if abs(rel) > DRIFT_THRESHOLD:
            line += "  DRIFT"
    return line


def report(payload: dict) -> list[str]:
    lines: list[str] = []
    trajectories = sorted(k for k in payload if k.endswith("_trajectory"))
    if not trajectories:
        return ["no *_trajectory keys found — run a full bench first"]
    for key in trajectories:
        points = [p for p in payload[key] if isinstance(p, dict)]
        if not points:
            continue
        bench = key[: -len("_trajectory")]
        n_smoke = sum(1 for p in points if p.get("smoke"))
        lines.append(f"{bench}: {len(points)} point(s)"
                     + (f" ({n_smoke} smoke)" if n_smoke else ""))
        entry = payload.get(bench)
        if isinstance(entry, dict):
            prov = {k: entry[k] for k in PROVENANCE_KEYS if k in entry}
            if prov:
                lines.append(f"  latest host: {prov}")
        latest = points[-1]
        first = points[0]
        prev = points[-2] if len(points) > 1 else None
        for metric in _numeric_keys(points):
            if prev is not None and metric in prev:
                lines.append(_delta_line(metric, prev[metric],
                                         latest[metric], "prev -> latest"))
            if len(points) > 1 and metric in first:
                lines.append(_delta_line(metric, first[metric],
                                         latest[metric], "first -> latest"))
        lines.append("")
    return lines


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = pathlib.Path(argv[0]) if argv else DEFAULT_PATH
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"[bench_report] {path} does not exist — nothing to report")
        return 0
    except json.JSONDecodeError as exc:
        print(f"[bench_report] {path} is not valid JSON: {exc}")
        return 0
    print(f"[bench_report] trajectories in {path} "
          f"(flag threshold {DRIFT_THRESHOLD:.0%}; non-gating)")
    for line in report(payload):
        print(line)
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream closed early (`bench_report | head`); not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
